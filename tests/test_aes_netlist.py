"""AES-128 datapath and its countermeasure wrapping.

AES exercises the non-SPN path: MixColumns is linear but not a bit
permutation, and the countermeasure only applies because M(x̄) = M(x)‾
(the MixColumns matrix rows sum to 1 in GF(2⁸)) — checked explicitly here.
"""

import pytest

from repro.ciphers.aes import AES128, gf_mul
from repro.ciphers.netlist_aes import (
    AesReference,
    AesSpec,
    block_to_int,
    build_aes_circuit,
    int_to_block,
)
from repro.countermeasures import (
    LambdaVariant,
    build_naive_duplication,
    build_three_in_one,
)
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.netlist.simulator import Simulator
from repro.rng import make_rng, random_ints

KEY = 0x000102030405060708090A0B0C0D0E0F


@pytest.fixture(scope="module")
def aes_spec():
    return AesSpec()


@pytest.fixture(scope="module")
def bare_circuit():
    circ, _core = build_aes_circuit()
    return circ


def ints_from_bits(bits):
    return [int(sum(int(b) << i for i, b in enumerate(row))) for row in bits]


class TestBlockLayout:
    def test_block_int_roundtrip(self):
        block = bytes(range(16))
        assert int_to_block(block_to_int(block)) == block

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            block_to_int(bytes(15))
        with pytest.raises(ValueError):
            int_to_block(1 << 128)

    def test_reference_adapter_matches_aes128(self):
        ref = AesReference(KEY)
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        direct = AES128(int_to_block(KEY)).encrypt_block(pt)
        assert ref.encrypt(block_to_int(pt)) == block_to_int(direct)
        assert ref.decrypt(ref.encrypt(0x1234)) == 0x1234


class TestMixColumnsTransparency:
    """The theory behind AES support: M(1…1) = 1…1."""

    def test_all_ones_is_a_fixed_point(self):
        state = [0xFF] * 16
        assert AES128._mix_columns(state) == state

    def test_inversion_transparency_on_random_states(self):
        rng = make_rng(4)
        for _ in range(20):
            state = [int(b) for b in rng.integers(0, 256, size=16)]
            mixed = AES128._mix_columns(state)
            inverted_in = [b ^ 0xFF for b in state]
            assert AES128._mix_columns(inverted_in) == [b ^ 0xFF for b in mixed]

    def test_row_coefficients_sum_to_one(self):
        assert gf_mul(0xFF, 2) ^ gf_mul(0xFF, 3) ^ 0xFF ^ 0xFF == 0xFF


class TestBareNetlist:
    def test_fips_vector(self, bare_circuit):
        key = block_to_int(bytes(range(16)))
        pt = block_to_int(bytes.fromhex("00112233445566778899aabbccddeeff"))
        sim = Simulator(bare_circuit, batch=1)
        sim.set_input_ints("plaintext", [pt])
        sim.set_input_ints("key", [key])
        sim.run(10)
        sim.eval_comb()
        want = block_to_int(bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"))
        assert sim.get_output_ints("ciphertext") == [want]

    def test_random_cases(self, bare_circuit):
        rng = make_rng(5)
        pts = random_ints(rng, 20, 128)
        keys = random_ints(rng, 20, 128)
        sim = Simulator(bare_circuit, batch=20)
        sim.set_input_ints("plaintext", pts)
        sim.set_input_ints("key", keys)
        sim.run(10)
        sim.eval_comb()
        got = sim.get_output_ints("ciphertext")
        assert got == [AesReference(k).encrypt(p) for k, p in zip(keys, pts)]

    def test_structure(self, bare_circuit):
        stats = bare_circuit.stats()
        # 128 state + 128 key + 8 rcon + 4 counter + 1 first
        assert stats.num_dffs == 269


class TestProtectedAes:
    @pytest.mark.parametrize(
        "variant", [LambdaVariant.PRIME, LambdaVariant.PER_ROUND]
    )
    def test_three_in_one_equivalence(self, aes_spec, variant):
        design = build_three_in_one(aes_spec, variant=variant)
        ref = AesReference(KEY)
        rng = make_rng(3)
        pts = random_ints(rng, 12, 128)
        sim = design.simulator(12)
        res = design.run(sim, pts, KEY, rng=rng)
        assert ints_from_bits(res["ciphertext"]) == [ref.encrypt(p) for p in pts]
        assert not res["fault"].any()

    def test_naive_duplication_equivalence(self, aes_spec):
        design = build_naive_duplication(aes_spec)
        ref = AesReference(KEY)
        rng = make_rng(7)
        pts = random_ints(rng, 8, 128)
        sim = design.simulator(8)
        res = design.run(sim, pts, KEY, rng=rng)
        assert ints_from_bits(res["ciphertext"]) == [ref.encrypt(p) for p in pts]

    def test_per_sbox_variant_rejected(self, aes_spec):
        with pytest.raises(ValueError, match="shared λ"):
            build_three_in_one(aes_spec, variant=LambdaVariant.PER_SBOX)

    def test_single_fault_never_escapes(self, aes_spec):
        design = build_three_in_one(aes_spec)
        core = design.cores[0]
        for sbox, bit, cycle in ((5, 3, 9), (0, 7, 0), (12, 0, 4)):
            fault = FaultSpec.at(
                sbox_input_net(core, sbox, bit), FaultType.STUCK_AT_0, cycle
            )
            res = run_campaign(design, [fault], n_runs=96, key=KEY, seed=sbox)
            assert res.count(Outcome.EFFECTIVE) == 0

    def test_identical_fault_always_detected(self, aes_spec):
        design = build_three_in_one(aes_spec)
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 5, 1), FaultType.STUCK_AT_0, last_round(core)
            )
            for core in design.cores
        ]
        res = run_campaign(design, specs, n_runs=256, key=KEY, seed=2)
        assert res.count(Outcome.DETECTED) == 256

    def test_identical_fault_bypasses_naive_aes(self, aes_spec):
        design = build_naive_duplication(aes_spec)
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 5, 1), FaultType.STUCK_AT_0, last_round(core)
            )
            for core in design.cores
        ]
        res = run_campaign(design, specs, n_runs=256, key=KEY, seed=2)
        assert res.count(Outcome.EFFECTIVE) > 80
        assert res.count(Outcome.DETECTED) == 0
