"""Quine–McCluskey prime implicants and cover selection."""

import pytest

from repro.synth.twolevel import Cube, prime_implicants, select_cover


class TestCube:
    def test_covers(self):
        cube = Cube(care=0b110, value=0b100)  # x2=1, x1=0, x0 free
        assert cube.covers(0b100)
        assert cube.covers(0b101)
        assert not cube.covers(0b110)

    def test_literals(self):
        cube = Cube(care=0b101, value=0b100)
        assert cube.literals(3) == [(0, False), (2, True)]

    def test_rejects_value_outside_care(self):
        with pytest.raises(ValueError):
            Cube(care=0b001, value=0b010)

    def test_equality_and_hash(self):
        assert Cube(3, 1) == Cube(3, 1)
        assert len({Cube(3, 1), Cube(3, 1), Cube(3, 2)}) == 2


class TestPrimeImplicants:
    def test_classic_textbook_example(self):
        # f(a,b,c,d) = Σm(0,1,2,5,6,7,8,9,10,14) — a standard QM exercise
        minterms = [0, 1, 2, 5, 6, 7, 8, 9, 10, 14]
        primes = prime_implicants(4, minterms)
        # every prime must cover only minterms
        on = set(minterms)
        for cube in primes:
            covered = [m for m in range(16) if cube.covers(m)]
            assert set(covered) <= on
        # and together they must cover the on-set
        assert {m for c in primes for m in range(16) if c.covers(m)} == on

    def test_full_on_set_gives_tautology_cube(self):
        primes = prime_implicants(3, list(range(8)))
        assert primes == [Cube(0, 0)]

    def test_single_minterm(self):
        primes = prime_implicants(3, [5])
        assert primes == [Cube(7, 5)]

    def test_empty_on_set(self):
        assert prime_implicants(3, []) == []

    def test_duplicates_tolerated(self):
        assert prime_implicants(2, [1, 1, 3]) == prime_implicants(2, [1, 3])


class TestCoverSelection:
    def test_cover_is_complete_and_prime(self):
        minterms = [0, 1, 2, 5, 6, 7, 8, 9, 10, 14]
        primes = prime_implicants(4, minterms)
        cover = select_cover(4, minterms, primes)
        for m in minterms:
            assert any(c.covers(m) for c in cover)
        assert all(c in primes for c in cover)

    def test_essential_primes_always_selected(self):
        # f = Σm(0,1,3): cube {0,1} (care=10) and {1,3} (care=01) are both
        # prime; 0 and 3 each have a single covering prime -> both essential.
        primes = prime_implicants(2, [0, 1, 3])
        cover = select_cover(2, [0, 1, 3], primes)
        assert set(cover) == set(primes)

    def test_empty_inputs(self):
        assert select_cover(3, [], []) == []

    def test_uncoverable_minterm_rejected(self):
        with pytest.raises(ValueError):
            select_cover(2, [0], [Cube(0b11, 0b11)])

    def test_greedy_path_on_large_residual(self):
        # force the greedy branch with exact_limit=0
        minterms = list(range(0, 16, 2))
        primes = prime_implicants(4, minterms)
        cover = select_cover(4, minterms, primes, exact_limit=0)
        for m in minterms:
            assert any(c.covers(m) for c in cover)
