"""TruthTable semantics, including the paper's inverted-domain transform."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.truthtable import TruthTable

PRESENT = [0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2]


class TestConstruction:
    def test_from_function(self):
        tt = TruthTable.from_function(3, 1, lambda x: x & 1)
        assert tt.table == [0, 1] * 4

    def test_from_columns_inverse_of_column(self):
        tt = TruthTable(4, 4, PRESENT)
        again = TruthTable.from_columns(4, tt.columns())
        assert again == tt

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            TruthTable(3, 2, [0] * 7)

    def test_rejects_oversized_entries(self):
        with pytest.raises(ValueError):
            TruthTable(2, 2, [0, 1, 2, 4])

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            TruthTable(-1, 1, [])
        with pytest.raises(ValueError):
            TruthTable(1, 0, [0, 0])

    def test_hash_eq(self):
        t1 = TruthTable(4, 4, PRESENT)
        t2 = TruthTable(4, 4, list(PRESENT))
        assert t1 == t2 and hash(t1) == hash(t2)
        assert t1 != TruthTable(4, 4, list(range(16)))


class TestQueries:
    def test_column_bit_extraction(self):
        tt = TruthTable(2, 2, [0, 1, 2, 3])
        assert tt.column(0) == 0b1010
        assert tt.column(1) == 0b1100
        with pytest.raises(IndexError):
            tt.column(2)

    def test_minterms(self):
        tt = TruthTable(2, 1, [0, 1, 1, 0])
        assert tt.minterms(0) == [1, 2]

    def test_is_permutation(self):
        assert TruthTable(4, 4, PRESENT).is_permutation()
        assert not TruthTable(2, 2, [0, 0, 1, 2]).is_permutation()
        assert not TruthTable(2, 1, [0, 1, 1, 0]).is_permutation()


class TestInvertedDomain:
    def test_defining_identity(self):
        tt = TruthTable(4, 4, PRESENT)
        inv = tt.inverted_domain()
        for x in range(16):
            assert inv(x ^ 0xF) == tt(x) ^ 0xF

    def test_involution(self):
        tt = TruthTable(4, 4, PRESENT)
        assert tt.inverted_domain().inverted_domain() == tt

    @given(st.lists(st.integers(0, 7), min_size=8, max_size=8))
    @settings(max_examples=30)
    def test_identity_on_random_tables(self, table):
        tt = TruthTable(3, 3, table)
        inv = tt.inverted_domain()
        for x in range(8):
            assert inv(x) == tt(x ^ 7) ^ 7

    def test_merged_table_layout(self):
        tt = TruthTable(4, 4, PRESENT)
        merged = tt.merged_with_domain_bit()
        assert merged.n_inputs == 5 and merged.n_outputs == 4
        for x in range(16):
            assert merged(x) == tt(x)  # λ=0 half: original
            assert merged(16 + x) == tt(x ^ 0xF) ^ 0xF  # λ=1 half: inverted
