"""Boundary-of-model experiments for the paper's §IV-B discussion.

The paper is explicit about what its countermeasure does and does not
cover; these tests pin each statement to an executable experiment:

- §IV-B.3 *two biased faults* at distinct data locations: still no
  exploitable release;
- §IV-B.4 *inverted fault masks* (a fault in one computation and its exact
  complement in the other): acknowledged in the paper as the one
  duplication-level blind spot — we demonstrate it is real, and that the
  paper's practicality argument (the attacker must realise *complementary*
  physical effects simultaneously) is the only thing standing in its way;
- λ pinning (the ACISP'20 λ-security assumption): an attacker who can hold
  the TRNG output at a known value re-enables SIFA — two faults per run,
  outside the paper's single-fault model, but the reason TRNG integrity
  matters.
"""

import pytest

from repro.attacks import sifa_attack
from repro.countermeasures import build_three_in_one
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from tests.conftest import TEST_KEY80


class TestTwoBiasedFaults:
    """§IV-B.3: two biased faults at distinct locations yield nothing."""

    def test_no_release_and_no_bias(self, ours_prime, present_spec):
        design = ours_prime
        core = design.cores[0]
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 7, 1), FaultType.STUCK_AT_0,
                present_spec.rounds - 2,
            ),
            FaultSpec.at(
                sbox_input_net(core, 2, 0), FaultType.STUCK_AT_0,
                present_spec.rounds - 2,
            ),
        ]
        res = run_campaign(design, specs, n_runs=12_000, key=TEST_KEY80, seed=17)
        assert res.count(Outcome.EFFECTIVE) == 0
        atk = sifa_attack(res, present_spec, 7, 1)
        assert not atk.success

    def test_two_faults_across_cores_distinct_locations(self, ours_prime):
        """Different wires in different cores: the complementary encodings
        make simultaneous ineffectiveness data-independent, so detection or
        correct release are the only outcomes."""
        design = ours_prime
        specs = [
            FaultSpec.at(
                sbox_input_net(design.cores[0], 3, 2), FaultType.STUCK_AT_0,
                last_round(design.cores[0]),
            ),
            FaultSpec.at(
                sbox_input_net(design.cores[1], 11, 1), FaultType.STUCK_AT_0,
                last_round(design.cores[1]),
            ),
        ]
        res = run_campaign(design, specs, n_runs=4_000, key=TEST_KEY80, seed=19)
        assert res.count(Outcome.EFFECTIVE) == 0


class TestInvertedFaultMask:
    """§IV-B.4: the acknowledged blind spot, demonstrated."""

    def test_complementary_stuck_ats_bypass_the_comparator(
        self, ours_prime, present_spec
    ):
        design = ours_prime
        net_a = sbox_input_net(design.cores[0], 5, 1)
        net_r = sbox_input_net(design.cores[1], 5, 1)
        specs = [
            FaultSpec.at(net_a, FaultType.STUCK_AT_0, last_round(design.cores[0])),
            FaultSpec.at(net_r, FaultType.STUCK_AT_1, last_round(design.cores[1])),
        ]
        res = run_campaign(design, specs, n_runs=4_000, key=TEST_KEY80, seed=23)
        # the two cores hold complementary physical values, so stuck-at-0
        # on one and stuck-at-1 on the other create the *same logical
        # error* — the comparator sees agreement and releases faulty words
        assert res.count(Outcome.EFFECTIVE) > 1200
        assert res.count(Outcome.DETECTED) == 0

    def test_identical_masks_remain_covered(self, ours_prime):
        """...whereas the *same* polarity in both cores (the FDTC'16 model
        the paper actually defends against) is always caught."""
        design = ours_prime
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 5, 1), FaultType.STUCK_AT_1,
                last_round(core),
            )
            for core in design.cores
        ]
        res = run_campaign(design, specs, n_runs=2_000, key=TEST_KEY80, seed=29)
        assert res.count(Outcome.DETECTED) == 2_000


class TestLambdaPinning:
    """Holding the TRNG output at a known value re-enables SIFA — two
    simultaneous faults, outside the paper's model, but the executable
    form of 'λ must remain secret and fresh'."""

    def test_pinned_lambda_restores_the_bias(self, present_spec):
        design = build_three_in_one(present_spec)
        lambda_net = design.circuit.inputs["lambda"][0]
        core = design.cores[0]
        specs = [
            # fault 1: pin λ to 0 for the whole run
            FaultSpec.at(lambda_net, FaultType.STUCK_AT_0, None),
            # fault 2: the usual biased data fault
            FaultSpec.at(
                sbox_input_net(core, 7, 1), FaultType.STUCK_AT_0,
                present_spec.rounds - 2,
            ),
        ]
        res = run_campaign(design, specs, n_runs=16_000, key=TEST_KEY80, seed=31)
        # detection still prevents wrong releases...
        assert res.count(Outcome.EFFECTIVE) == 0
        # ...but the ineffective set is data-biased again: SIFA succeeds
        atk = sifa_attack(res, present_spec, 7, 1)
        assert atk.success

    def test_free_lambda_blocks_the_same_attack(self, ours_prime, present_spec):
        design = ours_prime
        core = design.cores[0]
        spec = FaultSpec.at(
            sbox_input_net(core, 7, 1), FaultType.STUCK_AT_0,
            present_spec.rounds - 2,
        )
        res = run_campaign(design, [spec], n_runs=16_000, key=TEST_KEY80, seed=31)
        atk = sifa_attack(res, present_spec, 7, 1)
        assert not atk.success
