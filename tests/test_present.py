"""PRESENT reference implementation against the CHES 2007 test vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ciphers.present import PLAYER, PLAYER_INV, Present80, Present128

VECTORS_80 = [
    (0x00000000000000000000, 0x0000000000000000, 0x5579C1387B228445),
    (0xFFFFFFFFFFFFFFFFFFFF, 0x0000000000000000, 0xE72C46C0F5945049),
    (0x00000000000000000000, 0xFFFFFFFFFFFFFFFF, 0xA112FFC72F68417B),
    (0xFFFFFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2),
]


class TestVectors:
    @pytest.mark.parametrize("key,pt,ct", VECTORS_80)
    def test_official_encrypt(self, key, pt, ct):
        assert Present80(key).encrypt(pt) == ct

    @pytest.mark.parametrize("key,pt,ct", VECTORS_80)
    def test_official_decrypt(self, key, pt, ct):
        assert Present80(key).decrypt(ct) == pt


class TestStructure:
    def test_player_is_a_permutation_with_fixed_points(self):
        assert sorted(PLAYER) == list(range(64))
        assert PLAYER[0] == 0 and PLAYER[63] == 63
        for i in range(64):
            assert PLAYER_INV[PLAYER[i]] == i

    def test_32_round_keys(self):
        cipher = Present80(0xABCDEF)
        assert len(cipher.round_keys) == 32
        assert all(0 <= k < (1 << 64) for k in cipher.round_keys)

    def test_round_states_consistent_with_encrypt(self):
        cipher = Present80(0x42)
        pt = 0x0123456789ABCDEF
        states = cipher.round_states(pt)
        assert states[0] == pt
        assert len(states) == 32
        assert states[-1] ^ cipher.round_keys[31] == cipher.encrypt(pt)

    def test_last_round_sbox_input_matches_manual(self):
        cipher = Present80(0x987654321)
        pt = 0x1122334455667788
        state = cipher.round_states(pt)[30] ^ cipher.round_keys[30]
        for nib in range(16):
            assert cipher.last_round_sbox_input(pt, nib) == (state >> (4 * nib)) & 0xF

    def test_rejects_oversized_inputs(self):
        with pytest.raises(ValueError):
            Present80(1 << 80)
        with pytest.raises(ValueError):
            Present80(0).encrypt(1 << 64)
        with pytest.raises(ValueError):
            Present80(0).decrypt(-1)


class TestProperties:
    @given(st.integers(0, (1 << 80) - 1), st.integers(0, (1 << 64) - 1))
    @settings(max_examples=20, deadline=None)
    def test_decrypt_inverts_encrypt(self, key, pt):
        cipher = Present80(key)
        assert cipher.decrypt(cipher.encrypt(pt)) == pt

    def test_avalanche(self):
        cipher = Present80(0xA5A5A5A5A5A5A5A5A5A5)
        base = cipher.encrypt(0)
        flips = bin(base ^ cipher.encrypt(1)).count("1")
        assert 16 <= flips <= 48

    def test_key_sensitivity(self):
        pt = 0x0F0F0F0F0F0F0F0F
        assert Present80(0).encrypt(pt) != Present80(1).encrypt(pt)


class TestPresent128:
    def test_roundtrip(self):
        cipher = Present128(0x0123456789ABCDEF0123456789ABCDEF)
        for pt in (0, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEF00D):
            assert cipher.decrypt(cipher.encrypt(pt)) == pt

    def test_differs_from_80bit_schedule(self):
        assert Present128(0).encrypt(0) != Present80(0).encrypt(0)
