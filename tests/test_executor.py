"""The resilient campaign executor: sharding, checkpoints, supervision.

The load-bearing property is the determinism contract: a sharded,
parallel, interrupted-and-resumed campaign must produce *bit-identical*
arrays to a single-shot in-process run with the same seed.  The rest is
robustness plumbing: retry-with-backoff, per-shard timeouts, partial
results, and checkpoint corruption handling.
"""

from __future__ import annotations

import json
import logging
import time

import numpy as np
import pytest

from repro.faults import (
    RNG_BLOCK,
    CheckpointError,
    ExecutorConfig,
    FaultSpec,
    FaultType,
    run_campaign,
    run_campaign_sharded,
)
from repro.faults.checkpoint import CheckpointStore, shard_digest
from repro.faults.models import sbox_input_net
from tests.conftest import TEST_KEY80

N_RUNS = 2 * RNG_BLOCK + RNG_BLOCK // 2  # 2.5 shards at shard_runs=RNG_BLOCK
SEED = 21


def _fault(design, present_spec):
    net = sbox_input_net(design.cores[0], 7, 1)
    return FaultSpec.at(net, FaultType.STUCK_AT_0, present_spec.rounds - 2)


@pytest.fixture(scope="module")
def single_shot(naive_design, present_spec):
    fault = _fault(naive_design, present_spec)
    return run_campaign(
        naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED
    )


def _assert_identical(a, b):
    assert (a.plaintext_bits == b.plaintext_bits).all()
    assert (a.released_bits == b.released_bits).all()
    assert (a.expected_bits == b.expected_bits).all()
    assert (a.fault_flags == b.fault_flags).all()
    assert (a.outcomes == b.outcomes).all()


# ---------------------------------------------------------- fail-injection
# Hooks must be module-level (picklable) to also work under a process pool.


def fail_from_shard_one(index: int, attempt: int) -> None:
    if index >= 1:
        raise RuntimeError("injected shard crash")


class FlakyFirstAttempt:
    """Raises on every shard's first attempt, succeeds on the retry."""

    def __call__(self, index: int, attempt: int) -> None:
        if attempt == 1:
            raise OSError("injected transient failure")


def always_fail_shard_zero(index: int, attempt: int) -> None:
    if index == 0:
        raise ValueError("injected persistent failure")


def sleep_in_shard_zero(index: int, attempt: int) -> None:
    if index == 0:
        time.sleep(5)


class TestDeterminism:
    def test_chunk_size_invariance(self, naive_design, present_spec, single_shot):
        fault = _fault(naive_design, present_spec)
        small = run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            chunk=RNG_BLOCK,
        )
        _assert_identical(small, single_shot)

    def test_sharded_equals_single_shot(
        self, naive_design, present_spec, single_shot, tmp_path
    ):
        fault = _fault(naive_design, present_spec)
        sharded = run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            shard_runs=RNG_BLOCK, checkpoint_dir=tmp_path / "ck",
        )
        _assert_identical(sharded, single_shot)
        assert not sharded.partial
        assert sharded.extra["n_shards"] == 3

    def test_parallel_equals_single_shot(
        self, naive_design, present_spec, single_shot
    ):
        fault = _fault(naive_design, present_spec)
        parallel = run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            jobs=2, shard_runs=RNG_BLOCK,
        )
        _assert_identical(parallel, single_shot)

    def test_interrupt_resume_is_bit_identical(
        self, naive_design, present_spec, single_shot, tmp_path
    ):
        """Kill after k shards, resume, compare against the uninterrupted run."""
        fault = _fault(naive_design, present_spec)
        ck = tmp_path / "ck"
        partial = run_campaign_sharded(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck, retries=0, backoff=0.0
            ),
            shard_hook=fail_from_shard_one,
        )
        assert partial.partial and partial.n_runs == RNG_BLOCK

        store = CheckpointStore(ck)
        store.load()
        digests_before = {
            i: r.digest for i, r in store.shards.items() if r.status == "done"
        }
        assert list(digests_before) == [0]

        resumed = run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            shard_runs=RNG_BLOCK, checkpoint_dir=ck, resume=True,
        )
        _assert_identical(resumed, single_shot)
        assert not resumed.partial

        # the resumed ledger is complete and the surviving shard's digest
        # is untouched (it was loaded from disk, not recomputed)
        store = CheckpointStore(ck)
        store.load()
        assert all(r.status == "done" for r in store.shards.values())
        assert store.shards[0].digest == digests_before[0]

    def test_resume_skips_completed_shards(
        self, naive_design, present_spec, single_shot, tmp_path
    ):
        """A second resume with a poisoned hook never re-executes anything."""
        fault = _fault(naive_design, present_spec)
        ck = tmp_path / "ck"
        run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            shard_runs=RNG_BLOCK, checkpoint_dir=ck,
        )

        def explode(index, attempt):  # would fail any recomputed shard
            raise AssertionError("shard was re-executed on resume")

        resumed = run_campaign_sharded(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, checkpoint_dir=ck, resume=True
            ),
            shard_hook=explode,
        )
        _assert_identical(resumed, single_shot)


class TestSupervision:
    def test_retry_with_backoff_recovers_transient_failures(
        self, naive_design, present_spec, single_shot
    ):
        fault = _fault(naive_design, present_spec)
        result = run_campaign_sharded(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            config=ExecutorConfig(shard_runs=RNG_BLOCK, retries=1, backoff=0.0),
            shard_hook=FlakyFirstAttempt(),
        )
        assert not result.partial
        _assert_identical(result, single_shot)

    def test_exhausted_retries_degrade_to_partial_result(
        self, naive_design, present_spec, single_shot, tmp_path, caplog
    ):
        fault = _fault(naive_design, present_spec)
        ck = tmp_path / "ck"
        with caplog.at_level(logging.WARNING, logger="repro.faults.executor"):
            result = run_campaign_sharded(
                naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
                config=ExecutorConfig(
                    shard_runs=RNG_BLOCK, checkpoint_dir=ck, retries=1, backoff=0.0
                ),
                shard_hook=always_fail_shard_zero,
            )
        # partial completion is reported as a structured log event
        assert "completed partially" in caplog.text
        # the permanent failure is logged with its captured traceback
        assert "injected persistent failure" in caplog.text
        assert "Traceback" in caplog.text
        # shard 0 quarantined, the surviving shards are runs [1024, 2560)
        assert result.partial
        assert result.n_runs == N_RUNS - RNG_BLOCK
        [failure] = result.extra["failed_shards"]
        assert failure["index"] == 0
        assert failure["attempts"] == 2  # first attempt + one retry
        assert failure["error_kind"] == "permanent"
        assert "injected persistent failure" in failure["error"]
        assert "injected persistent failure" in failure["traceback"]
        assert (result.released_bits == single_shot.released_bits[RNG_BLOCK:]).all()

        store = CheckpointStore(ck)
        store.load()
        assert store.shards[0].status == "quarantined"
        assert store.shards[0].attempts == 2
        assert store.shards[0].error_kind == "permanent"

    def test_shard_timeout_enforced(self, naive_design, present_spec):
        fault = _fault(naive_design, present_spec)
        result = run_campaign_sharded(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            config=ExecutorConfig(
                shard_runs=RNG_BLOCK, timeout=0.3, retries=0, backoff=0.0
            ),
            shard_hook=sleep_in_shard_zero,
        )
        assert result.partial
        assert "ShardTimeout" in result.extra["failed_shards"][0]["error"]


class TestCheckpointIntegrity:
    def _checkpointed(self, naive_design, present_spec, ck):
        fault = _fault(naive_design, present_spec)
        return run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            shard_runs=RNG_BLOCK, checkpoint_dir=ck,
        )

    def test_corrupt_manifest_recovers_with_fresh_ledger(
        self, naive_design, present_spec, single_shot, tmp_path, caplog
    ):
        """An unparseable manifest is recovered from, not crashed on.

        The ledger carries no results of its own, so the executor starts a
        fresh one and recomputes — the campaign still completes and is
        bit-identical to the uninterrupted run.
        """
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        (ck / "manifest.json").write_text("{ this is not json")
        fault = _fault(naive_design, present_spec)
        with caplog.at_level(logging.WARNING, logger="repro.faults.executor"):
            resumed = run_campaign(
                naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
                shard_runs=RNG_BLOCK, checkpoint_dir=ck, resume=True,
            )
        assert "fresh ledger" in caplog.text
        _assert_identical(resumed, single_shot)
        store = CheckpointStore(ck)
        store.load()  # the recovered ledger parses and verifies again
        assert all(r.status == "done" for r in store.shards.values())

    def test_direct_load_of_corrupt_manifest_raises(
        self, naive_design, present_spec, tmp_path
    ):
        from repro.faults.checkpoint import CheckpointCorrupt

        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        (ck / "manifest.json").write_text("{ this is not json")
        store = CheckpointStore(ck)
        with pytest.raises(CheckpointCorrupt, match="corrupt"):
            store.load()
        # CheckpointCorrupt is a CheckpointError: old callers still catch it
        assert issubclass(CheckpointCorrupt, CheckpointError)

    def test_manifest_checksum_detects_bitrot(
        self, naive_design, present_spec, tmp_path
    ):
        from repro.faults.checkpoint import CheckpointCorrupt

        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        # valid JSON, silently edited: the whole-manifest checksum catches
        # what a parse cannot
        raw = (ck / "manifest.json").read_text().replace(str(SEED), "99", 1)
        (ck / "manifest.json").write_text(raw)
        store = CheckpointStore(ck)
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            store.load()

    def test_foreign_campaign_rejected(self, naive_design, present_spec, tmp_path):
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        fault = _fault(naive_design, present_spec)
        with pytest.raises(CheckpointError, match="different"):
            run_campaign(
                naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80,
                seed=SEED + 1,  # different campaign identity
                shard_runs=RNG_BLOCK, checkpoint_dir=ck, resume=True,
            )

    def test_corrupt_shard_archive_recomputed(
        self, naive_design, present_spec, single_shot, tmp_path
    ):
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        (ck / "shard_00001.npz").write_bytes(b"garbage, not a zip archive")
        fault = _fault(naive_design, present_spec)
        resumed = run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            shard_runs=RNG_BLOCK, checkpoint_dir=ck, resume=True,
        )
        _assert_identical(resumed, single_shot)

    def test_tampered_shard_fails_digest_and_recomputes(
        self, naive_design, present_spec, single_shot, tmp_path
    ):
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        store = CheckpointStore(ck)
        store.load()
        arrays = store.read_shard(1)
        assert arrays is not None
        arrays["released_bits"] = arrays["released_bits"].copy()
        arrays["released_bits"][0, 0] ^= 1
        np.savez_compressed(store.shard_path(1), **arrays)
        assert store.read_shard(1) is None  # digest mismatch detected

        fault = _fault(naive_design, present_spec)
        resumed = run_campaign(
            naive_design, [fault], n_runs=N_RUNS, key=TEST_KEY80, seed=SEED,
            shard_runs=RNG_BLOCK, checkpoint_dir=ck, resume=True,
        )
        _assert_identical(resumed, single_shot)

    def test_manifest_records_digests(self, naive_design, present_spec, tmp_path):
        ck = tmp_path / "ck"
        self._checkpointed(naive_design, present_spec, ck)
        raw = json.loads((ck / "manifest.json").read_text())
        assert raw["version"] == 1
        assert raw["campaign"]["seed"] == SEED
        assert raw["campaign"]["n_runs"] == N_RUNS
        assert len(raw["shards"]) == 3
        store = CheckpointStore(ck)
        store.load()
        for index, record in store.shards.items():
            arrays = store.read_shard(index)
            assert shard_digest(arrays) == record.digest


class TestDeadlineFallback:
    """Timeouts degrade gracefully where SIGALRM cannot be armed."""

    def test_non_main_thread_degrades_with_one_log_event(self, caplog):
        import threading

        from repro.faults import executor as ex

        results: list = []

        def body():
            with ex._deadline(0.01):
                results.append("ran")
            with ex._deadline(0.01):
                results.append("ran again")

        saved = ex._timeout_warned
        ex._timeout_warned = False
        try:
            with caplog.at_level(
                logging.WARNING, logger="repro.faults.executor"
            ):
                thread = threading.Thread(target=body)
                thread.start()
                thread.join()
        finally:
            ex._timeout_warned = saved
        assert results == ["ran", "ran again"]
        messages = [
            r.getMessage()
            for r in caplog.records
            if "SIGALRM" in r.getMessage()
        ]
        assert len(messages) == 1  # logged once, not per shard
        assert "without a wall-clock guard" in messages[0]

    def test_no_timeout_means_no_guard(self):
        from repro.faults import executor as ex

        for seconds in (None, 0, -1):
            with ex._deadline(seconds):
                pass


class TestGenericRunSharded:
    """run_sharded carries arbitrary tasks/keys (the certifier rides this)."""

    def test_custom_keys_and_merge(self, tmp_path):
        from repro.faults.executor import run_sharded

        def task(lo, hi):
            idx = np.arange(lo, hi, dtype=np.int64)
            return {"index": idx, "square": idx * idx}

        ranges = [(0, 3), (3, 7), (7, 10)]
        run = run_sharded(
            task,
            ranges,
            config=ExecutorConfig(checkpoint_dir=tmp_path / "ck"),
            identity={"kind": "squares"},
            keys=("index", "square"),
        )
        assert run.complete and not run.stopped_early
        merged = run.merged(("index", "square"))
        assert merged["index"].tolist() == list(range(10))
        assert merged["square"].tolist() == [i * i for i in range(10)]

        # a resume with the same identity replays from checkpoints
        resumed = run_sharded(
            task,
            ranges,
            config=ExecutorConfig(checkpoint_dir=tmp_path / "ck", resume=True),
            identity={"kind": "squares"},
            keys=("index", "square"),
        )
        again = resumed.merged(("index", "square"))
        assert (again["square"] == merged["square"]).all()

    def test_on_shard_done_stops_scheduling(self):
        from repro.faults.executor import run_sharded

        def task(lo, hi):
            return {"x": np.arange(lo, hi, dtype=np.int64)}

        seen: list[int] = []

        def stop_at_first(index, arrays):
            seen.append(index)
            return True

        run = run_sharded(
            task,
            [(0, 2), (2, 4), (4, 6)],
            keys=("x",),
            on_shard_done=stop_at_first,
        )
        assert run.stopped_early
        assert len(seen) == 1
        assert len(run.results) == 1

    def test_mismatched_keys_rejected_on_resume(self, tmp_path):
        from repro.faults.executor import run_sharded

        def task(lo, hi):
            return {"x": np.arange(lo, hi, dtype=np.int64)}

        run_sharded(
            task,
            [(0, 2)],
            config=ExecutorConfig(checkpoint_dir=tmp_path / "ck"),
            identity={"kind": "k"},
            keys=("x",),
        )
        with pytest.raises(CheckpointError, match="keys"):
            run_sharded(
                lambda lo, hi: {"y": np.arange(lo, hi, dtype=np.int64)},
                [(0, 2)],
                config=ExecutorConfig(
                    checkpoint_dir=tmp_path / "ck", resume=True
                ),
                identity={"kind": "k"},
                keys=("y",),
            )


class TestPrewarm:
    """Backend codegen is compiled in the worker initializer (outside any
    shard timeout window), not lazily inside the first shard."""

    def test_prewarm_backend_populates_codegen_caches(self, naive_design):
        from repro.faults.executor import prewarm_backend
        from repro.netlist.compiled import _PROGRAM_CACHE, compile_program
        from repro.netlist.levelized import _SCHEDULE_CACHE, compile_schedule

        circuit = naive_design.circuit
        _PROGRAM_CACHE.pop(circuit, None)
        _SCHEDULE_CACHE.pop(circuit, None)

        prewarm_backend(naive_design, "compiled")
        assert circuit in _PROGRAM_CACHE
        cached = compile_program(circuit)
        assert compile_program(circuit) is cached  # hit, no recompile

        prewarm_backend(naive_design, "levelized")
        assert circuit in _SCHEDULE_CACHE
        assert compile_schedule(circuit) is compile_schedule(circuit)

        prewarm_backend(naive_design, "reference")  # nothing to pre-warm: a no-op

    def test_prewarm_failure_is_nonfatal(self, caplog):
        from repro.faults.executor import _run_prewarm

        def broken():
            raise RuntimeError("codegen exploded")

        with caplog.at_level(logging.WARNING, logger="repro.faults.executor"):
            _run_prewarm(broken)  # must not raise
        assert "pre-warm" in caplog.text

    def test_sharded_campaign_defaults_prewarm(self, naive_design, present_spec, monkeypatch):
        """run_campaign_sharded wires a backend pre-warm into the executor
        config by default, and the serial path actually runs it."""
        import repro.faults.executor as executor_mod

        calls = []
        real = executor_mod.prewarm_backend
        monkeypatch.setattr(
            executor_mod, "prewarm_backend",
            lambda d, b: calls.append(b) or real(d, b),
        )
        run_campaign_sharded(
            naive_design, [_fault(naive_design, present_spec)],
            n_runs=RNG_BLOCK // 2, key=TEST_KEY80, seed=SEED,
            backend="levelized",
            config=ExecutorConfig(shard_runs=RNG_BLOCK),
        )
        assert calls == ["levelized"]
