"""End-to-end attack validation: each attack must break the design the
paper says it breaks, and starve against the three-in-one scheme."""

import numpy as np
import pytest

from repro.attacks import dfa_attack_last_round, selmke_attack, sifa_attack
from repro.attacks.fta import fta_key_recovery
from repro.attacks.metrics import chi_squared_uniform, distribution, rank_of, sei
from repro.attacks.sifa import (
    ineffective_distribution,
    predicted_conditional_bias,
    recover_sbox_inputs,
    true_subkey,
)
from repro.ciphers.present import Present80
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.rng import make_rng, random_ints
from repro.utils.bits import ints_to_bits
from tests.conftest import TEST_KEY80


class TestMetrics:
    def test_sei_zero_for_uniform(self):
        values = list(range(16)) * 10
        assert sei(values, 16) == pytest.approx(0.0)

    def test_sei_max_for_point_mass(self):
        # (1 − 1/16)² + 15·(1/16)² = 1 − 1/16
        assert sei([3] * 50, 16) == pytest.approx(1 - 1 / 16, rel=1e-6)

    def test_distribution_empty_is_uniform(self):
        assert distribution([], 4).tolist() == [0.25] * 4

    def test_chi_squared_detects_bias(self):
        biased = [0] * 100 + [1] * 10
        stat, dof = chi_squared_uniform(biased, 2)
        assert dof == 1 and stat > 50
        flat_stat, _ = chi_squared_uniform(list(range(8)) * 20, 8)
        assert flat_stat == pytest.approx(0.0)

    def test_rank_of(self):
        scores = {0: 0.5, 1: 0.9, 2: 0.1}
        assert rank_of(scores, 1) == 1
        assert rank_of(scores, 2) == 3
        with pytest.raises(KeyError):
            rank_of(scores, 7)


class TestSifaComponents:
    def test_recover_sbox_inputs_inverts_last_round(self, present_spec):
        cipher = Present80(TEST_KEY80)
        rng = make_rng(5)
        pts = random_ints(rng, 30, 64)
        cts = ints_to_bits([cipher.encrypt(p) for p in pts], 64)
        for sbox in (0, 13):
            truth = true_subkey(present_spec, TEST_KEY80, sbox)
            xs = recover_sbox_inputs(present_spec, cts, sbox, truth)
            expect = [cipher.last_round_sbox_input(p, sbox) for p in pts]
            assert xs.tolist() == expect

    def test_predicted_bias_matches_hand_computation(self, present_spec):
        biases = predicted_conditional_bias(present_spec, 1, 0)
        # PRESENT S-box restricted to inputs with bit1=0: see DESIGN notes
        assert biases[0] == pytest.approx(0.0)
        assert biases[1] == pytest.approx(0.125)
        assert biases[2] == pytest.approx(0.125)
        assert biases[3] == pytest.approx(0.125)

    def test_gift_last_round_recovery(self, gift_spec):
        """GIFT ends as C = P(S(x)) ⊕ mask too — the unified solver
        recovers the last-round S-box inputs under the true mask."""
        from repro.ciphers.gift import Gift64

        cipher = Gift64(0x0123456789ABCDEF0123456789ABCDEF)
        rng = make_rng(6)
        pts = random_ints(rng, 20, 64)
        cts = ints_to_bits([cipher.encrypt(p) for p in pts], 64)
        for sbox in (0, 9):
            truth = true_subkey(gift_spec, cipher.key, sbox)
            xs = recover_sbox_inputs(gift_spec, cts, sbox, truth)
            for row, pt in enumerate(pts):
                state = cipher.round_states(pt)[cipher.rounds - 1]
                assert xs[row] == (state >> (4 * sbox)) & 0xF

    def test_aes_last_round_recovery(self):
        """And AES (ShiftRows + K10): byte-level back-computation."""
        from repro.ciphers.netlist_aes import AesReference, AesSpec

        spec = AesSpec()
        key = 0x000102030405060708090A0B0C0D0E0F
        ref = AesReference(key)
        rng = make_rng(7)
        pts = random_ints(rng, 6, 128)
        cts = ints_to_bits([ref.encrypt(p) for p in pts], 128)
        for byte in (0, 7, 15):
            truth = spec.last_round_subkey(key, byte)
            xs = recover_sbox_inputs(spec, cts, byte, truth)
            # ground truth: the state byte entering the final SubBytes,
            # recomputed forward through nine full rounds
            for row, pt in enumerate(pts):
                block = [(pt >> (8 * j)) & 0xFF for j in range(16)]
                aes = ref.cipher
                state = aes._add_round_key(block, aes.round_keys[0])
                for rnd in range(1, 10):
                    state = aes._sub_bytes(state)
                    state = aes._shift_rows(state)
                    state = aes._mix_columns(state)
                    state = aes._add_round_key(state, aes.round_keys[rnd])
                assert xs[row] == state[byte]


class TestSifaEndToEnd:
    @pytest.fixture(scope="class")
    def campaigns(self, naive_design, ours_prime, present_spec):
        out = {}
        for design, label in ((naive_design, "naive"), (ours_prime, "ours")):
            net = sbox_input_net(design.cores[0], 7, 1)
            spec = FaultSpec.at(net, FaultType.STUCK_AT_0, present_spec.rounds - 2)
            out[label] = run_campaign(
                design, [spec], n_runs=16_000, key=TEST_KEY80, seed=21
            )
        return out

    def test_breaks_naive_duplication(self, campaigns, present_spec):
        atk = sifa_attack(campaigns["naive"], present_spec, 7, 1)
        assert atk.success
        assert atk.recovered_bits == 12  # 3 of 4 landing bits carry bias

    def test_fails_against_three_in_one(self, campaigns, present_spec):
        atk = sifa_attack(campaigns["ours"], present_spec, 7, 1)
        assert not atk.success
        assert atk.recovered_bits <= 4  # at most a lucky nibble

    def test_last_round_distribution_support(self, naive_design, ours_prime, present_spec):
        for design, expect_support in ((naive_design, 8), (ours_prime, 16)):
            net = sbox_input_net(design.cores[0], 13, 2)
            spec = FaultSpec.at(net, FaultType.STUCK_AT_0, last_round(design.cores[0]))
            res = run_campaign(design, [spec], n_runs=6000, key=TEST_KEY80, seed=2)
            dist = ineffective_distribution(res, present_spec, 13)
            assert (dist > 0).sum() == expect_support


class TestDfaSolver:
    def make_pairs(self, spec, key, target_sbox, faulted_bit, n=24):
        """Synthesise (correct, faulty) pairs from the reference cipher."""
        cipher = Present80(key)
        rng = make_rng(9)
        pts = random_ints(rng, n, 64)
        correct, faulty = [], []
        from repro.ciphers.present import PLAYER, _p_layer, _sbox_layer

        for p in pts:
            c = cipher.encrypt(p)
            x = cipher.last_round_sbox_input(p, target_sbox)
            x_f = x & ~(1 << faulted_bit)
            # recompute last round with the faulted nibble
            state = cipher.round_states(p)[30] ^ cipher.round_keys[30]
            state = (state & ~(0xF << (4 * target_sbox))) | (x_f << (4 * target_sbox))
            state = _sbox_layer(state, spec.sbox)
            state = _p_layer(state, PLAYER)
            faulty.append(state ^ cipher.round_keys[31])
            correct.append(c)
        return ints_to_bits(correct, 64), ints_to_bits(faulty, 64)

    def test_unique_survivor_is_true_key(self, present_spec):
        correct, faulty = self.make_pairs(present_spec, TEST_KEY80, 5, 1)
        res = dfa_attack_last_round(
            present_spec, correct, faulty, 5, 1, FaultType.STUCK_AT_0, key=TEST_KEY80
        )
        assert res.success
        assert res.recovered_bits == 4

    def test_no_pairs_no_elimination(self, present_spec):
        correct, _ = self.make_pairs(present_spec, TEST_KEY80, 5, 1, n=4)
        res = dfa_attack_last_round(
            present_spec, correct, correct, 5, 1, FaultType.STUCK_AT_0, key=TEST_KEY80
        )
        assert res.n_pairs == 0
        assert len(res.survivors) == 16


class TestSelmkeEndToEnd:
    def test_breaks_naive_duplication(self, naive_design):
        res = selmke_attack(
            naive_design, target_sbox=5, faulted_bit=1, key=TEST_KEY80,
            n_runs=6000, seed=4,
        )
        assert res.n_faulty_released > 2000
        assert res.success

    def test_partially_breaks_acisp20(self, acisp_design):
        res = selmke_attack(
            acisp_design, target_sbox=5, faulted_bit=1, key=TEST_KEY80,
            n_runs=6000, seed=4,
        )
        # λ agree in ~half the runs; a quarter of runs leak faulty outputs
        assert res.n_faulty_released > 1000
        assert res.success

    def test_starves_against_three_in_one(self, ours_prime):
        res = selmke_attack(
            ours_prime, target_sbox=5, faulted_bit=1, key=TEST_KEY80,
            n_runs=6000, seed=4,
        )
        assert res.n_faulty_released == 0
        assert res.dfa is None
        assert not res.success


class TestFtaEndToEnd:
    PTS = [0x5AF019C3B2487D6E, 0xC3A1905E7F2B6D84, 0x0F1E2D3C4B5A6978, 0x9182736455463728]

    def test_breaks_naive_duplication(self, naive_design):
        rec = fta_key_recovery(
            naive_design, sbox=3, plaintexts=self.PTS, key=TEST_KEY80,
            n_rep=16, seed=7,
        )
        assert rec.success
        assert rec.recovered_bits == 4.0

    def test_fails_against_three_in_one(self, ours_prime):
        rec = fta_key_recovery(
            ours_prime, sbox=3, plaintexts=self.PTS, key=TEST_KEY80,
            n_rep=32, seed=7,
        )
        assert not rec.success

    def test_template_matches_and_gate_rule(self):
        """On a bare AND circuit the exact template must equal the classic
        'output flips iff the other input is 1' rule."""
        from repro.attacks.fta import build_templates
        from repro.netlist.builder import CircuitBuilder

        b = CircuitBuilder()
        x = b.input("x", 2)
        y = b.and_(x[0], x[1])
        b.output("y", [y])
        templates = build_templates(b.circuit, [x[0], x[1]])
        # flipping x0 changes the output iff x1 == 1
        assert templates[0].tolist() == [0.0, 0.0, 1.0, 1.0]
        assert templates[1].tolist() == [0.0, 1.0, 0.0, 1.0]

    def test_instance_net_map_is_exact(self, naive_design):
        """The mapped instance nets must behave like the template nets:
        check by running the design and comparing an S-box instance's
        output nets against the standalone circuit's function."""
        from repro.attacks.fta import instance_net_map

        mapping = instance_net_map(naive_design, 0, 5)
        sub = naive_design.sbox_circuit
        out_nets = [mapping[n] for n in sub.outputs["y"]]
        core = naive_design.cores[0]
        assert out_nets == core.sbox_outputs[5]
