"""The chaos layer's zero-overhead-when-disabled contract, measured.

Every instrumented site in the executor and checkpoint store pays exactly
one attribute load and one ``is None`` branch when chaos is disabled
(the default) — the same contract telemetry honours.  This bench prices
the three hook shapes (:meth:`ChaosInjector.at`,
:meth:`ChaosInjector.should`, :meth:`ChaosInjector.corrupt_file`) against
one levelized protected-PRESENT-80 kernel cycle and enforces the
acceptance bound: with chaos disabled, the hooks cost **< 2%** of a
cycle.  A campaign shard simulates ``design.cycles`` kernel cycles and
crosses only a handful of chaos sites, so one hook call per cycle is
already a generous over-estimate of the amortised cost.

It also runs an enabled schedule once to check injection actually works
when asked for — a worker fault fires and the metrics counter moves.
"""

import time

import pytest

from benchmarks.conftest import bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.resilience import ChaosError, ChaosFault, ChaosSpec, chaos
from repro.rng import make_rng, random_ints
from repro.telemetry import metrics

BATCH = 4096
OVERHEAD_CEILING = 0.02  # disabled-path cost budget: 2% of one kernel cycle
HOOK_CALLS = 50_000


def _per_cycle_seconds(design, repeats: int = 5) -> float:
    """Best-of-``repeats`` seconds per simulated cycle, chaos off."""
    rng = make_rng(3)
    sim = design.simulator(BATCH, backend="levelized")
    sim.set_input_ints("plaintext", random_ints(rng, BATCH, design.spec.block_bits))
    sim.run(design.cycles)  # warm-up: compile the schedule, page buffers
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim.run(design.cycles)
        best = min(best, time.perf_counter() - t0)
    return best / design.cycles


def _per_call_seconds(fn, calls: int = HOOK_CALLS) -> float:
    fn()  # warm-up
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls


def test_disabled_chaos_overhead(artifact_dir):
    chaos.disable()
    assert not chaos.enabled

    design = build_three_in_one(PresentSpec())
    cycle_s = _per_cycle_seconds(design)
    at_s = _per_call_seconds(lambda: chaos.at("worker", index=1, attempt=1))
    should_s = _per_call_seconds(
        lambda: chaos.should("supervisor.result", "duplicate", index=1)
    )
    corrupt_s = _per_call_seconds(
        lambda: chaos.corrupt_file("checkpoint.shard", "/nonexistent", index=1)
    )

    overhead = (at_s + should_s + corrupt_s) / cycle_s
    assert overhead < OVERHEAD_CEILING, (
        f"disabled chaos hooks cost {overhead:.2%} of a levelized cycle "
        f"(budget {OVERHEAD_CEILING:.0%}): at={at_s * 1e9:.0f}ns, "
        f"should={should_s * 1e9:.0f}ns, corrupt={corrupt_s * 1e9:.0f}ns, "
        f"cycle={cycle_s * 1e6:.0f}us"
    )

    emit(
        artifact_dir,
        "resilience_overhead.txt",
        (
            f"disabled-chaos overhead on the levelized kernel: "
            f"{overhead:.4%} of one batch-{BATCH} cycle "
            f"(at {at_s * 1e9:.0f} ns + should {should_s * 1e9:.0f} ns + "
            f"corrupt_file {corrupt_s * 1e9:.0f} ns vs cycle "
            f"{cycle_s * 1e6:.1f} us; budget {OVERHEAD_CEILING:.0%})"
        ),
    )
    bench_report(
        artifact_dir,
        "resilience",
        config={
            "batch": BATCH,
            "ceiling": OVERHEAD_CEILING,
            "hook_calls": HOOK_CALLS,
        },
        metrics={
            "cycle_seconds": round(cycle_s, 9),
            "at_hook_seconds": round(at_s, 12),
            "should_hook_seconds": round(should_s, 12),
            "corrupt_hook_seconds": round(corrupt_s, 12),
            "overhead_fraction": round(overhead, 6),
        },
    )


def test_enabled_chaos_actually_fires():
    """The hooks must work when asked for, not just be free when not."""
    metrics.reset()
    chaos.configure(
        ChaosSpec(seed=2, faults=(ChaosFault("worker", "raise", 1.0, 1),))
    )
    try:
        with pytest.raises(ChaosError):
            chaos.at("worker", index=0, attempt=1)
        assert chaos.at("worker", index=0, attempt=2) is None  # retry healthy
    finally:
        chaos.disable()
        snap = metrics.snapshot()
        metrics.reset()
    assert snap["counters"].get("chaos.injected", 0) == 1
    assert snap["counters"].get("chaos.worker.raise", 0) == 1
