"""The headline claim (paper title + §I): one countermeasure versus all
three attack families, with the baselines for contrast.

Regenerates an attack × scheme matrix of key-recovery outcomes:

              DFA(identical)   SIFA          FTA
naive dup     BROKEN           BROKEN        BROKEN
ACISP'20      BROKEN           protected     protected
three-in-one  protected        protected     protected

The FTA column for ACISP'20 deserves a note: the paper argues the merged
(one-place) S-box *further reduces* the FTA success probability versus
ACISP'20's separate S/S̄ implementation; under our exact-template FTA both
randomised schemes already defeat the classic (deterministic-template)
adversary, so both read "protected" here, and the residual statistical
difference between constructions is examined in bench_variants_ablation.
"""

from benchmarks.conftest import BENCH_KEY, bench_report, campaign_knobs, emit
from repro.evaluation import render_table
from repro.evaluation.matrix import run_attack_matrix


def run_matrix(n_runs: int):
    return run_attack_matrix(n_runs, key=BENCH_KEY, **campaign_knobs("matrix"))


def test_attack_matrix(benchmark, artifact_dir, bench_runs):
    n_runs = min(bench_runs, 16_000)
    matrix = benchmark.pedantic(lambda: run_matrix(n_runs), rounds=1, iterations=1)

    def verdict(result) -> str:
        return "BROKEN" if result.success else "protected"

    # the paper's claims, asserted
    assert matrix["naive_duplication"]["dfa_identical"].success
    assert matrix["naive_duplication"]["sifa"].success
    assert matrix["naive_duplication"]["fta"].success
    assert matrix["acisp20"]["dfa_identical"].success
    assert not matrix["acisp20"]["sifa"].success
    assert not matrix["three_in_one"]["dfa_identical"].success
    assert not matrix["three_in_one"]["sifa"].success
    assert not matrix["three_in_one"]["fta"].success

    rows = [
        [label, verdict(cells["dfa_identical"]), verdict(cells["sifa"]), verdict(cells["fta"])]
        for label, cells in matrix.items()
    ]
    text = render_table(
        ["scheme", "identical-fault DFA", "SIFA", "FTA"],
        rows,
        title=f"Attack x scheme key-recovery matrix ({n_runs} campaign runs)",
    )
    emit(artifact_dir, "attack_matrix.txt", text)
    bench_report(
        artifact_dir,
        "attack_matrix",
        config={"runs": n_runs},
        metrics={
            label: {attack: cells[attack].success for attack in cells}
            for label, cells in matrix.items()
        },
    )
