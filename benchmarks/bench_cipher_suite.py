"""Registry-wide artefact — GE overhead and throughput per cipher.

The paper prices the countermeasure on PRESENT-80 (Table II) and the AES
S-box layer (Table III).  With the cipher registry in place the same
pricing is mechanical for *every* registered design: this bench builds
the unprotected core and the three-in-one design for each entry at full
rounds, prices both in gate equivalents, and measures protected
encryption throughput under the levelized and compiled backends.

The machine-readable result lands in ``BENCH_ciphers.json`` keyed by
canonical cipher name, so CI can diff per-cipher overhead across
revisions.
"""

import time

from benchmarks.conftest import bench_report, emit
from repro.ciphers.registry import get_entry, registered_ciphers
from repro.countermeasures import build_three_in_one
from repro.evaluation import render_table
from repro.netlist.builder import CircuitBuilder
from repro.rng import make_rng, random_ints
from repro.synth.sbox_synth import synthesize_sbox
from repro.tech import area_of

KEY = 0x2B7E151628AED2A6ABF7158809CF4F3C
BATCH = 256


def _build_bare(spec):
    """Unprotected single-core circuit for ``spec`` (no countermeasure)."""
    builder = CircuitBuilder(f"{spec.name}_bare")
    pt = builder.input("plaintext", spec.block_bits)
    key = builder.input("key", spec.key_bits)
    sbox_circuit = synthesize_sbox(
        spec.sbox.truthtable(), strategy="shannon", name=f"{spec.name}_sbox"
    )
    spec.build_core(builder, pt, key, sbox_circuit=sbox_circuit, tag="u")
    builder.circuit.validate()
    return builder.circuit


def _throughput(design, spec, backend):
    """Protected encryptions per second on a BATCH-wide simulator."""
    key = KEY & ((1 << spec.key_bits) - 1)
    pts = random_ints(make_rng(3), BATCH, spec.block_bits)
    sim = design.simulator(BATCH, backend=backend)
    design.run(sim, pts, key, rng=7)  # warm-up (compiled backend JITs here)
    start = time.perf_counter()
    res = design.run(design.simulator(BATCH, backend=backend), pts, key, rng=7)
    elapsed = time.perf_counter() - start
    assert res["fault"].sum() == 0
    return BATCH / elapsed


def run_cipher_suite():
    rows = {}
    for name in registered_ciphers():
        spec = get_entry(name).make()  # full rounds
        bare_ge = area_of(_build_bare(spec)).total
        design = build_three_in_one(spec)
        protected_ge = area_of(design.circuit).total
        rows[name] = {
            "block_bits": spec.block_bits,
            "key_bits": spec.key_bits,
            "rounds": spec.rounds,
            "bare_ge": bare_ge,
            "protected_ge": protected_ge,
            "overhead": round(protected_ge / bare_ge, 3),
            "levelized_enc_per_s": round(_throughput(design, spec, "levelized"), 1),
            "compiled_enc_per_s": round(_throughput(design, spec, "compiled"), 1),
        }
    return rows


def test_cipher_suite(benchmark, artifact_dir):
    rows = benchmark.pedantic(run_cipher_suite, rounds=1, iterations=1)

    for name, row in rows.items():
        # duplication-based: strictly more than 1x; the merged (n+1)x m
        # S-boxes push S-box-light cores (GIFT) slightly past 3x
        assert 1.0 < row["overhead"] < 4.0, name
        assert row["compiled_enc_per_s"] > 0, name

    text = render_table(
        ["cipher", "block/key", "rounds", "bare GE", "protected GE",
         "overhead", "enc/s (compiled)"],
        [
            [name, f"{row['block_bits']}/{row['key_bits']}", row["rounds"],
             row["bare_ge"], row["protected_ge"], f"{row['overhead']:.2f}x",
             row["compiled_enc_per_s"]]
            for name, row in rows.items()
        ],
        title="Three-in-one cost across the cipher registry (full rounds)",
    )
    emit(artifact_dir, "cipher_suite.txt", text)
    bench_report(
        artifact_dir,
        "ciphers",
        config={"batch": BATCH, "ciphers": list(rows)},
        metrics=rows,
    )
    benchmark.extra_info["ciphers"] = {
        name: row["overhead"] for name, row in rows.items()
    }
