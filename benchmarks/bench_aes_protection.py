"""Extension artefact — the countermeasure on full AES-128.

The paper prices AES's S-box layer (Table III) but evaluates the full
design only on PRESENT-80.  With a complete AES-128 datapath in the
library, this bench extends Table II to AES: area of naïve duplication vs
the three-in-one design on the whole cipher, plus the Fig.-4/5-style
campaigns demonstrating the security properties carry over — including
the MixColumns inversion-transparency that makes AES support non-obvious.
"""

from benchmarks.conftest import bench_report, emit
from repro.ciphers.netlist_aes import AesSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.evaluation import render_table
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.tech import area_of

KEY = 0x000102030405060708090A0B0C0D0E0F
N_RUNS = 8_000


def run_aes_evaluation():
    spec = AesSpec()
    naive = build_naive_duplication(spec)
    ours = build_three_in_one(spec)

    naive_area = area_of(naive.circuit)
    ours_area = area_of(ours.circuit)

    # Fig.4-style: single-core biased fault
    net = sbox_input_net(ours.cores[0], 13, 2)
    single = FaultSpec.at(net, FaultType.STUCK_AT_0, last_round(ours.cores[0]))
    single_res = run_campaign(ours, [single], n_runs=N_RUNS, key=KEY, seed=4)

    # Fig.5-style: identical faults in both cores, naive vs ours
    outcomes = {}
    for design, label in ((naive, "naive"), (ours, "ours")):
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 5, 1), FaultType.STUCK_AT_0, last_round(core)
            )
            for core in design.cores
        ]
        outcomes[label] = run_campaign(design, specs, n_runs=N_RUNS, key=KEY, seed=5)
    return naive_area, ours_area, single_res, outcomes


def test_aes_protection(benchmark, artifact_dir):
    naive_area, ours_area, single_res, outcomes = benchmark.pedantic(
        run_aes_evaluation, rounds=1, iterations=1
    )

    ratio = ours_area.total / naive_area.total
    assert 1.2 <= ratio <= 2.0  # S-box-dominated design: between Table II & III
    assert single_res.count(Outcome.EFFECTIVE) == 0
    assert outcomes["naive"].count(Outcome.EFFECTIVE) > N_RUNS * 0.3
    assert outcomes["ours"].count(Outcome.DETECTED) == N_RUNS

    text = render_table(
        ["metric", "naive duplication", "three-in-one"],
        [
            ["total area (GE)", naive_area.total, ours_area.total],
            ["overhead", "1.00x", f"{ratio:.2f}x"],
            ["identical-fault bypasses", outcomes["naive"].count(Outcome.EFFECTIVE),
             outcomes["ours"].count(Outcome.EFFECTIVE)],
            ["identical-fault detections", outcomes["naive"].count(Outcome.DETECTED),
             outcomes["ours"].count(Outcome.DETECTED)],
            ["single-fault bypasses (ours)", "-", single_res.count(Outcome.EFFECTIVE)],
        ],
        title=f"AES-128 under the countermeasure ({N_RUNS} runs per campaign)",
    )
    emit(artifact_dir, "aes_protection.txt", text)
    bench_report(
        artifact_dir,
        "aes_protection",
        config={"runs": N_RUNS, "cipher": "aes128"},
        metrics={
            "naive_ge": naive_area.total,
            "ours_ge": ours_area.total,
            "area_ratio": round(ratio, 3),
            "identical_fault_bypasses_naive": outcomes["naive"].count(Outcome.EFFECTIVE),
            "identical_fault_bypasses_ours": outcomes["ours"].count(Outcome.EFFECTIVE),
            "identical_fault_detections_ours": outcomes["ours"].count(Outcome.DETECTED),
            "single_fault_bypasses_ours": single_res.count(Outcome.EFFECTIVE),
        },
    )
    benchmark.extra_info["aes_ratio"] = round(ratio, 3)
