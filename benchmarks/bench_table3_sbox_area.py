"""Table III — area of one duplicated S-box layer, plain vs merged.

Paper (45nm Nangate):
    PRESENT S-boxes:  605 GE → 1397 GE (2.3×)
    AES S-boxes:     8363 GE → 15327 GE (1.8×)

Absolute GE depends on mapper quality (our AES S-box is a generic
Shannon/BDD synthesis, not a hand-optimised tower-field circuit), but the
paper's point — the merged layer costs roughly twice the duplicated plain
layer, with AES relatively cheaper than PRESENT because the 9-input merged
box shares more logic — is asserted on the ratios.
"""

from benchmarks.conftest import bench_report, emit
from repro.evaluation import render_table, table3


def test_table3(benchmark, artifact_dir):
    rows = benchmark.pedantic(table3, rounds=1, iterations=1)

    by_key = {(r.countermeasure, r.cipher): r for r in rows}
    present_ratio = by_key[("ours", "present")].ratio
    aes_ratio = by_key[("ours", "aes")].ratio
    assert 1.5 <= present_ratio <= 3.0  # paper: 2.3×
    assert 1.4 <= aes_ratio <= 2.5  # paper: 1.8×

    text = render_table(
        ["countermeasure", "cipher", "total GE", "ratio", "paper GE", "paper ratio"],
        [
            [
                r.countermeasure,
                r.cipher,
                r.total,
                f"{r.ratio:.2f}x",
                r.paper_total,
                f"{r.paper_ratio:.2f}x",
            ]
            for r in rows
        ],
        title=(
            "Table III: one duplicated S-box layer "
            "(paper: PRESENT 605->1397 GE 2.3x, AES 8363->15327 GE 1.8x)"
        ),
    )
    emit(artifact_dir, "table3.txt", text)
    bench_report(
        artifact_dir,
        "table3",
        config={"ciphers": ["present", "aes"]},
        metrics={
            f"{r.countermeasure}/{r.cipher}": {
                "total_ge": r.total,
                "ratio": round(r.ratio, 3),
            }
            for r in rows
        },
    )
    benchmark.extra_info["present_ratio"] = round(present_ratio, 3)
    benchmark.extra_info["aes_ratio"] = round(aes_ratio, 3)
