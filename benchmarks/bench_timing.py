"""§IV-A latency claim — "the required number of clock periods would be
essentially the same".

Both designs take the same 31 cycles per block, so latency hinges on the
clock period, i.e. the critical combinational path.  The bench prices both
(plus the technology-mapped variants) with the normalised Nangate delay
model and asserts the stretch stays modest (the merged S-box is exactly one
Shannon variable deeper than the plain one).
"""

from benchmarks.conftest import bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import (
    LambdaVariant,
    build_naive_duplication,
    build_three_in_one,
    build_triplication,
)
from repro.evaluation import render_table
from repro.tech.mapping import map_to_cells
from repro.tech.timing import critical_path


def run_timing():
    spec = PresentSpec()
    designs = [
        ("naive_duplication", build_naive_duplication(spec)),
        ("triplication", build_triplication(spec)),
        ("three_in_one prime", build_three_in_one(spec)),
        ("three_in_one per_sbox", build_three_in_one(spec, variant=LambdaVariant.PER_SBOX)),
    ]
    rows = []
    for label, design in designs:
        raw = critical_path(design.circuit)
        mapped = critical_path(map_to_cells(design.circuit))
        rows.append([label, raw.delay, mapped.delay, design.cycles])
    return rows


def test_timing(benchmark, artifact_dir):
    rows = benchmark.pedantic(run_timing, rounds=1, iterations=1)
    by_label = {r[0]: r for r in rows}

    naive = by_label["naive_duplication"]
    ours = by_label["three_in_one prime"]
    # same cycle count...
    assert ours[3] == naive[3] == 31
    # ...and a clock-period stretch bounded by the one-variable-deeper S-box
    assert 1.0 <= ours[1] / naive[1] <= 1.4
    # triplication doesn't change the path either (it's wider, not deeper)
    assert by_label["triplication"][1] / naive[1] < 1.1

    text = render_table(
        ["design", "critical path (NAND2-norm)", "after mapping", "cycles/block"],
        rows,
        title="Latency: critical path and cycle count per design",
    )
    emit(artifact_dir, "timing.txt", text)
    bench_report(
        artifact_dir,
        "timing",
        config={"delay_model": "nangate_nand2_norm"},
        metrics={
            label: {"raw_delay": raw, "mapped_delay": mapped, "cycles": cycles}
            for label, raw, mapped, cycles in rows
        },
    )
