"""§IV-A ablation — "the results for the earlier rounds would be similar".

The paper shows only last-round campaigns and asserts earlier rounds
behave the same.  This bench sweeps the fault round over the cipher and
checks the two invariants that make the claim true on our substrate:

- three-in-one never releases a wrong ciphertext at any round;
- the ineffective rate stays ≈ ½ at every round for a stuck-at on a
  uniformly distributed wire (the λ encoding keeps the physical wire
  uniform regardless of the round).
"""

from benchmarks.conftest import BENCH_KEY, bench_report, emit
from repro.evaluation import render_table
from repro.evaluation.matrix import run_round_sweep


def sweep(n_runs: int):
    return run_round_sweep(n_runs, key=BENCH_KEY)


def test_round_sweep(benchmark, artifact_dir, bench_runs):
    n_runs = min(bench_runs, 10_000)
    rows = benchmark.pedantic(lambda: sweep(n_runs), rounds=1, iterations=1)

    for round_, naive_ineff, naive_eff, ours_ineff, ours_eff in rows:
        assert naive_eff == 0 and ours_eff == 0  # single fault never escapes
        assert 0.4 <= ours_ineff <= 0.6  # λ keeps the wire balanced everywhere
        assert 0.3 <= naive_ineff <= 0.7

    text = render_table(
        ["round", "naive ineff rate", "naive bypass", "ours ineff rate", "ours bypass"],
        rows,
        title=(
            f"Round sweep: stuck-at-0 at S-box 13 bit 2, {n_runs} runs per point "
            "(paper SIV-A: earlier rounds behave like the last)"
        ),
    )
    emit(artifact_dir, "round_sweep.txt", text)
    bench_report(
        artifact_dir,
        "round_sweep",
        config={"runs": n_runs},
        metrics={
            "rounds_swept": len(rows),
            "max_bypasses": max(max(r[2], r[4]) for r in rows),
            "ours_ineff_min": min(r[3] for r in rows),
            "ours_ineff_max": max(r[3] for r in rows),
        },
    )
