"""Telemetry's zero-overhead-by-default contract, measured.

The levelized kernel's hot path pays exactly one
:func:`repro.telemetry.metrics.kernel_timings_enabled` check per
simulated cycle before falling through to the uninstrumented loop, and a
disabled tracer hands every ``trace.span(...)`` caller the shared
:data:`~repro.telemetry.trace.NULL_SPAN`.  This bench prices both against
the kernel itself and enforces the acceptance bound from the telemetry
design: with everything disabled, instrumentation costs **< 2%** of a
levelized protected-PRESENT-80 cycle.

It also runs the instrumented twin once (timings force-enabled) to check
the per-(level, opcode) histograms actually fill — the observability has
to *work* when asked for, not just be free when not.
"""

import time

from benchmarks.conftest import bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.rng import make_rng, random_ints
from repro.telemetry import enable_kernel_timings, metrics, trace
from repro.telemetry.metrics import kernel_timings_enabled
from repro.telemetry.trace import NULL_SPAN

BATCH = 4096
OVERHEAD_CEILING = 0.02  # disabled-path cost budget: 2% of one kernel cycle
CHECK_CALLS = 50_000


def _per_cycle_seconds(design, repeats: int = 5) -> float:
    """Best-of-``repeats`` seconds per simulated cycle, telemetry off."""
    rng = make_rng(3)
    sim = design.simulator(BATCH, backend="levelized")
    sim.set_input_ints("plaintext", random_ints(rng, BATCH, design.spec.block_bits))
    sim.run(design.cycles)  # warm-up: compile the schedule, page buffers
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim.run(design.cycles)
        best = min(best, time.perf_counter() - t0)
    return best / design.cycles


def _per_call_seconds(fn, calls: int = CHECK_CALLS) -> float:
    fn()  # warm-up
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls


def test_disabled_telemetry_overhead(artifact_dir):
    assert not trace.enabled
    assert trace.span("bench.probe", attr=1) is NULL_SPAN

    design = build_three_in_one(PresentSpec())
    cycle_s = _per_cycle_seconds(design)
    # the two dispatch points instrumented code pays when telemetry is off
    check_s = _per_call_seconds(kernel_timings_enabled)
    span_s = _per_call_seconds(_null_span_probe)

    # the kernel makes one enabled-check per cycle; campaign code opens a
    # handful of spans per *shard*, so one NULL_SPAN round-trip per cycle
    # is already a generous over-estimate of its amortised cost
    overhead = (check_s + span_s) / cycle_s
    assert overhead < OVERHEAD_CEILING, (
        f"disabled telemetry costs {overhead:.2%} of a levelized cycle "
        f"(budget {OVERHEAD_CEILING:.0%}): check={check_s * 1e9:.0f}ns, "
        f"null span={span_s * 1e9:.0f}ns, cycle={cycle_s * 1e6:.0f}us"
    )

    emit(
        artifact_dir,
        "telemetry_overhead.txt",
        (
            f"disabled-telemetry overhead on the levelized kernel: "
            f"{overhead:.4%} of one batch-{BATCH} cycle "
            f"(flag check {check_s * 1e9:.0f} ns + null span "
            f"{span_s * 1e9:.0f} ns vs cycle {cycle_s * 1e6:.1f} us; "
            f"budget {OVERHEAD_CEILING:.0%})"
        ),
    )
    bench_report(
        artifact_dir,
        "telemetry_overhead",
        config={"batch": BATCH, "ceiling": OVERHEAD_CEILING, "check_calls": CHECK_CALLS},
        metrics={
            "cycle_seconds": round(cycle_s, 9),
            "flag_check_seconds": round(check_s, 12),
            "null_span_seconds": round(span_s, 12),
            "overhead_fraction": round(overhead, 6),
        },
    )


def _null_span_probe():
    with trace.span("bench.noop", x=1):
        pass


def test_kernel_timings_fill_when_enabled():
    """Force-enable the instrumented twin and check histograms populate."""
    design = build_three_in_one(PresentSpec())
    rng = make_rng(4)
    sim = design.simulator(64, backend="levelized")
    sim.set_input_ints("plaintext", random_ints(rng, 64, design.spec.block_bits))
    metrics.reset()
    enable_kernel_timings(True)
    try:
        sim.run(design.cycles)
    finally:
        enable_kernel_timings(False)
    snap = metrics.snapshot()
    assert snap["counters"].get("kernel.levelized.cycles", 0) >= design.cycles
    kernel_hists = {
        name: h for name, h in snap["histograms"].items() if name.startswith("kernel.l")
    }
    assert kernel_hists, "per-(level, opcode) histograms must fill when enabled"
    assert all(h["count"] > 0 and h["total"] >= 0 for h in kernel_hists.values())
    metrics.reset()
