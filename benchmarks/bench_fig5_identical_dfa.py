"""Fig. 5 — identical stuck-at-0 faults in *both* computations (Selmke).

Paper: against naïve duplication the identical fault passes the comparator
and faulty ciphertexts are released (panel a shows the resulting bias);
under the proposed countermeasure the complementary encodings make the two
cores disagree whenever the fault bites, so every effective fault is
detected and the bias is nullified (panel b).

The benchmark regenerates both campaigns and then runs the end-to-end
Selmke DFA to show the released bias actually yields the subkey.
"""

from benchmarks.conftest import BENCH_KEY, bench_report, campaign_knobs, emit
from repro.attacks import selmke_attack
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_acisp20, build_naive_duplication, build_three_in_one
from repro.evaluation import figure5, render_histogram


def test_figure5(benchmark, artifact_dir, bench_runs):
    fig = benchmark.pedantic(
        lambda: figure5(n_runs=bench_runs, key=BENCH_KEY, **campaign_knobs("fig5")),
        rounds=1,
        iterations=1,
    )

    # naive: ~half the runs release faulty ciphertexts, none are detected
    assert fig.naive.faulty_released > bench_runs * 0.4
    assert fig.naive.counts["detected"] == 0
    # ours: every run detected, nothing faulty ever released
    assert fig.ours.faulty_released == 0
    assert fig.ours.counts["detected"] == bench_runs

    parts = [
        f"Fig. 5 — identical stuck-at-0 at S-box {fig.target_sbox} bit "
        f"{fig.target_bit} in BOTH computations ({fig.naive.n_runs} runs)",
        render_histogram(
            fig.naive.distribution,
            title=(
                f"(a) naive duplication: faulty released={fig.naive.faulty_released} "
                f"{fig.naive.counts}"
            ),
        ),
        render_histogram(
            fig.ours.distribution,
            title=(
                f"(b) our countermeasure: faulty released={fig.ours.faulty_released} "
                f"{fig.ours.counts}"
            ),
        ),
    ]
    emit(artifact_dir, "figure5.txt", "\n\n".join(parts))
    bench_report(
        artifact_dir,
        "fig5",
        config={"runs": bench_runs, "sbox": fig.target_sbox, "bit": fig.target_bit},
        metrics={
            "naive_bypasses": fig.naive.faulty_released,
            "ours_bypasses": fig.ours.faulty_released,
            "ours_detections": fig.ours.counts["detected"],
        },
    )
    benchmark.extra_info["naive_bypasses"] = fig.naive.faulty_released
    benchmark.extra_info["ours_bypasses"] = fig.ours.faulty_released


def test_figure5_selmke_dfa(benchmark, artifact_dir, bench_runs):
    """End-to-end identical-fault DFA against all three duplication schemes."""
    spec = PresentSpec()
    n_runs = min(bench_runs, 20_000)

    def run():
        out = {}
        for builder, label in (
            (build_naive_duplication, "naive"),
            (build_acisp20, "acisp20"),
            (build_three_in_one, "ours"),
        ):
            out[label] = selmke_attack(
                builder(spec), target_sbox=5, faulted_bit=1, key=BENCH_KEY,
                n_runs=n_runs, seed=4, **campaign_knobs(f"fig5_selmke_{label}"),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["naive"].success
    assert results["acisp20"].success  # the weakness ours fixes
    assert not results["ours"].success and results["ours"].n_faulty_released == 0

    lines = [f"Selmke identical-fault DFA (S-box 5 bit 1, last round, {n_runs} runs)"]
    for label, res in results.items():
        if res.dfa is None:
            lines.append(f"  {label}: 0 faulty outputs released — attack starved")
        else:
            lines.append(
                f"  {label}: faulty released={res.n_faulty_released} "
                f"survivors={[hex(s) for s in res.dfa.survivors]} "
                f"true=0x{res.dfa.true_subkey:x} success={res.success}"
            )
    emit(artifact_dir, "figure5_selmke.txt", "\n".join(lines))
    bench_report(
        artifact_dir,
        "fig5_selmke",
        config={"runs": n_runs, "sbox": 5, "bit": 1},
        metrics={
            label: {
                "success": res.success,
                "faulty_released": res.n_faulty_released,
            }
            for label, res in results.items()
        },
    )
