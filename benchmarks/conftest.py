"""Benchmark configuration.

Every benchmark regenerates one artefact of the paper's evaluation section
and prints it in the paper's layout (run pytest with ``-s`` to see the
artefacts inline; they are also written to ``benchmarks/out/``).

Scale knobs (environment variables):

``REPRO_BENCH_RUNS``
    Fault-campaign size for the figure benchmarks.  Defaults to the
    paper's 80,000 runs; set lower (e.g. 10000) for a quick pass.

``REPRO_JOBS``
    Worker processes for the campaign-heavy benchmarks (Fig. 4/5, attack
    matrix).  Defaults to in-process execution; the results are
    bit-identical either way (see the campaign determinism contract).

``REPRO_CHECKPOINT_DIR``
    When set, those campaigns checkpoint their shards under this directory
    and *resume* from whatever a previous (killed, OOMed, ^C'd) benchmark
    run already computed.

``REPRO_BENCH_OUT``
    Artefact output directory.  Defaults to ``benchmarks/out/`` resolved
    against *this file's* location (never the process CWD, so running
    pytest from anywhere — including an installed ``src/`` tree — cannot
    scatter ``BENCH_*.json`` files into the package).

``REPRO_BENCH_HISTORY``
    Benchmark-history ledger path (default ``<out>/bench_history.jsonl``).
    Every ``bench_report`` emission also appends one line here so
    ``repro bench check`` can judge the newest run against the series'
    rolling baseline.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.telemetry import run_manifest

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "80000"))
BENCH_KEY = 0x8F4E2D1C0B5A69783746
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "1")) or None
BENCH_CHECKPOINT_DIR = os.environ.get("REPRO_CHECKPOINT_DIR") or None

OUT_DIR = pathlib.Path(
    os.environ.get("REPRO_BENCH_OUT")
    or pathlib.Path(__file__).resolve().parent / "out"
).resolve()


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def bench_runs() -> int:
    return BENCH_RUNS


@pytest.fixture(scope="session")
def bench_jobs() -> int | None:
    return BENCH_JOBS


@pytest.fixture(scope="session")
def bench_checkpoint_dir() -> str | None:
    return BENCH_CHECKPOINT_DIR


def campaign_knobs(subdir: str) -> dict:
    """Executor kwargs for a campaign-heavy benchmark (env-driven)."""
    ckpt = (
        pathlib.Path(BENCH_CHECKPOINT_DIR) / subdir
        if BENCH_CHECKPOINT_DIR
        else None
    )
    return {
        "jobs": BENCH_JOBS,
        "checkpoint_dir": ckpt,
        "resume": ckpt is not None,
    }


def emit(artifact_dir: pathlib.Path, name: str, text: str) -> None:
    """Print an artefact and persist it under benchmarks/out/."""
    print(f"\n{text}\n")
    (artifact_dir / name).write_text(text + "\n")


def bench_report(
    artifact_dir: pathlib.Path, name: str, *, config: dict, metrics: dict
) -> pathlib.Path:
    """Persist a benchmark's machine-readable result as ``BENCH_<name>.json``.

    Every benchmark writes the same four-field document — ``name``, the
    inputs that shaped the run (``config``), the measured numbers
    (``metrics``), and the environment ``manifest`` (git rev, python/numpy
    versions, timestamp) — so CI can archive and diff them uniformly.
    """
    from repro.resilience.persist import atomic_write_json

    from repro.telemetry.history import append_entry, resolve_history_path

    path = artifact_dir / f"BENCH_{name}.json"
    report = {
        "name": name,
        "config": config,
        "metrics": metrics,
        "manifest": run_manifest(kind="bench", bench=name),
    }
    atomic_write_json(path, report)
    append_entry(resolve_history_path(artifact_dir), report)
    return path
