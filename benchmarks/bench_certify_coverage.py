"""Budgeted coverage certification of the paper's scheme vs. naive duplication.

Where ``bench_fault_coverage`` hand-walks the S-box wires, this bench runs
the real certifier over the *enumerated* fault space — all four adversarial
models, stratified under a run budget — and asserts the headline claims in
certificate form: three-in-one earns a passing certificate with zero
``EFFECTIVE`` witnesses, while naive duplication is broken by the
identical-mask model and every recorded witness replays exactly.
"""

from benchmarks.conftest import BENCH_KEY, bench_report, campaign_knobs, emit
from repro.certify import CertifyConfig, certify_design, replay_witness
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.faults import Outcome

BUDGET = 50_000
RUNS_PER_LOCATION = 64
ROUNDS = 8  # reduced-round instance: same per-round netlist, bench-sized sweep


def run_certify():
    spec = PresentSpec(rounds=ROUNDS)
    knobs = campaign_knobs("certify")
    ours = certify_design(
        build_three_in_one(spec),
        key=BENCH_KEY,
        config=CertifyConfig(
            budget=BUDGET,
            runs_per_location=RUNS_PER_LOCATION,
            seed=11,
            jobs=knobs["jobs"] or 1,
            checkpoint_dir=(
                knobs["checkpoint_dir"] / "ours" if knobs["checkpoint_dir"] else None
            ),
            resume=knobs["resume"],
        ),
    )
    naive_design = build_naive_duplication(spec)
    naive = certify_design(
        naive_design,
        key=BENCH_KEY,
        config=CertifyConfig(
            budget=BUDGET // 8,
            runs_per_location=RUNS_PER_LOCATION,
            models=("identical_mask",),
            seed=11,
            jobs=knobs["jobs"] or 1,
            checkpoint_dir=(
                knobs["checkpoint_dir"] / "naive" if knobs["checkpoint_dir"] else None
            ),
            resume=knobs["resume"],
        ),
    )
    return ours, naive, naive_design


def test_certify_coverage(benchmark, artifact_dir):
    ours, naive, naive_design = benchmark.pedantic(
        run_certify, rounds=1, iterations=1
    )

    assert ours.passed, ours.verdicts
    assert not ours.witnesses
    assert ours.coverage["runs_executed"] >= BUDGET
    assert not ours.coverage["failed_shards"]

    assert naive.verdicts["dfa_detection"]["status"] == "fail"
    assert naive.witnesses, "identical-mask sweep must break naive duplication"
    for witness in naive.witnesses[:4]:
        outcome, _ = replay_witness(naive_design, witness, key=BENCH_KEY)
        assert outcome is Outcome.EFFECTIVE, witness["scenario"]["label"]

    text = "\n\n".join(
        [
            "three-in-one (prime):\n" + ours.summary(),
            "naive duplication (identical-mask model):\n" + naive.summary(),
        ]
    )
    emit(artifact_dir, "certify_coverage.txt", text)
    ours.save(artifact_dir / "certificate_three_in_one.json")
    naive.save(artifact_dir / "certificate_naive.json")
    bench_report(
        artifact_dir,
        "certify_coverage",
        config={
            "budget": BUDGET,
            "runs_per_location": RUNS_PER_LOCATION,
            "rounds": ROUNDS,
        },
        metrics={
            "ours_passed": ours.passed,
            "ours_runs_executed": ours.coverage["runs_executed"],
            "ours_witnesses": len(ours.witnesses),
            "naive_witnesses": len(naive.witnesses),
            "naive_dfa_status": naive.verdicts["dfa_detection"]["status"],
        },
    )
