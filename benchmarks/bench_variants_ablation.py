"""§III ablations — the design choices DESIGN.md calls out.

1. **Entropy variants** (paper change #2): prime / per-round / per-S-box
   cost in area and TRNG bits per encryption.
2. **Merged-S-box construction** (paper change #3): monolithic (the
   paper's "at one place") vs the ACISP'20-style separate S/S̄ vs the
   cheap xor-wrap — area, plus the *residual FTA information* each leaks
   to a statistical (fraction-observing) adversary, quantifying the
   paper's argument that the monolithic box reduces FTA success.
"""

import numpy as np

from benchmarks.conftest import BENCH_KEY, bench_report, emit
from repro.attacks.fta import build_templates, fta_targets
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import LambdaVariant, build_three_in_one
from repro.countermeasures.merged_sbox import MERGED_CONSTRUCTIONS, build_merged_sbox
from repro.ciphers.sbox import PRESENT_SBOX
from repro.evaluation import render_table
from repro.tech import area_of


def variant_rows():
    spec = PresentSpec()
    rows = []
    trng_bits = {
        LambdaVariant.PRIME: 1,
        LambdaVariant.PER_ROUND: spec.rounds,
        LambdaVariant.PER_SBOX: spec.rounds * spec.n_sboxes,
    }
    for variant in LambdaVariant:
        design = build_three_in_one(spec, variant=variant)
        report = area_of(design.circuit)
        rows.append(
            [
                variant.value,
                report.combinational,
                report.non_combinational,
                report.total,
                trng_bits[variant],
            ]
        )
    return rows


def test_entropy_variants(benchmark, artifact_dir):
    rows = benchmark.pedantic(variant_rows, rounds=1, iterations=1)

    totals = {row[0]: row[3] for row in rows}
    # more entropy -> more hardware, in the expected order, and all stay
    # far below a triplicated design (~1.5x naive duplication)
    assert totals["prime"] <= totals["per_round"] <= totals["per_sbox"]
    assert totals["per_sbox"] < 1.25 * totals["prime"]

    text = render_table(
        ["variant", "comb GE", "non-comb GE", "total GE", "TRNG bits/encryption"],
        rows,
        title="Three-in-one entropy variants (PRESENT-80)",
    )
    emit(artifact_dir, "variants_entropy.txt", text)
    bench_report(
        artifact_dir,
        "variants_entropy",
        config={"cipher": "present80"},
        metrics={
            variant: {"total_ge": total, "trng_bits": trng}
            for variant, _, _, total, trng in rows
        },
    )


def residual_fta_information(construction: str) -> float:
    """Worst-case bits a statistical FTA adversary learns about an S-box
    input from exact per-wire effectiveness *fractions* (the strongest
    template attacker; the classic adversary sees only one bit per wire).

    Computed in closed form from the templates: candidates x and x' are
    indistinguishable iff their λ-averaged prediction vectors coincide.
    """
    circ = build_merged_sbox(PRESENT_SBOX, construction=construction)
    targets = fta_targets(circ)
    templates = build_templates(circ, targets)
    n = PRESENT_SBOX.n
    preds = []
    for x in range(1 << n):
        p0 = x
        p1 = (x ^ ((1 << n) - 1)) | (1 << n)
        preds.append(tuple(0.5 * (templates[:, p0] + templates[:, p1])))
    classes: dict[tuple, int] = {}
    for p in preds:
        classes[p] = classes.get(p, 0) + 1
    # expected information = n - sum (|class|/2^n) log2 |class|
    total = 1 << n
    return n - sum(c / total * np.log2(c) for c in classes.values())


def test_merged_sbox_constructions(benchmark, artifact_dir):
    def run():
        rows = []
        for construction in MERGED_CONSTRUCTIONS:
            circ = build_merged_sbox(PRESENT_SBOX, construction=construction)
            rows.append(
                [
                    construction,
                    area_of(circ).total,
                    residual_fta_information(construction),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    info = {row[0]: row[2] for row in rows}
    area = {row[0]: row[1] for row in rows}

    # the paper's argument: implementing S and its inversion "at one
    # place" leaks no more to FTA than the separate implementation
    assert info["monolithic"] <= info["separate"] + 1e-9
    assert area["xor_wrap"] <= area["monolithic"]

    text = render_table(
        ["construction", "area GE", "residual FTA info (bits, statistical adversary)"],
        [[c, a, f"{i:.2f}"] for c, a, i in rows],
        title=(
            "Merged S-box construction ablation (PRESENT S-box; classic FTA "
            "is defeated by all three, values show the stronger fraction-"
            "observing adversary)"
        ),
    )
    emit(artifact_dir, "variants_merged_sbox.txt", text)
    bench_report(
        artifact_dir,
        "variants_merged_sbox",
        config={"sbox": "present"},
        metrics={
            c: {"area_ge": a, "residual_fta_bits": round(float(i), 4)}
            for c, a, i in rows
        },
    )
