"""Fig. 4 — SIFA bias under a stuck-at-0 at S-box 13's 2nd MSB input.

The paper's 80k-run campaign: against naïve duplication the ineffective-set
distribution of the S-box input is confined to the 8 values with the
target bit clear (panel a); under the proposed countermeasure it is
uniform over all 16 (panel b).  The benchmark regenerates both panels,
prints them as histograms, and additionally runs the actual SIFA key
ranking to show the bias is (and stops being) *exploitable*.
"""

from benchmarks.conftest import BENCH_KEY, bench_report, campaign_knobs, emit
from repro.attacks import sifa_attack
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.evaluation import figure4, render_histogram
from repro.faults import FaultSpec, FaultType, run_campaign
from repro.faults.models import sbox_input_net


def test_figure4(benchmark, artifact_dir, bench_runs):
    fig = benchmark.pedantic(
        lambda: figure4(n_runs=bench_runs, key=BENCH_KEY, **campaign_knobs("fig4")),
        rounds=1,
        iterations=1,
    )

    # panel (a): support exactly on the 8 values with bit 2 == 0
    assert (fig.naive.distribution > 0).sum() == 8
    for v in range(16):
        if (v >> 2) & 1:
            assert fig.naive.distribution[v] == 0
    # panel (b): full support, SEI collapses
    assert (fig.ours.distribution > 0).sum() == 16
    assert fig.ours.sei < fig.naive.sei / 100
    # neither design releases wrong ciphertexts for a single fault
    assert fig.naive.faulty_released == 0
    assert fig.ours.faulty_released == 0

    parts = [
        f"Fig. 4 — ineffective-set distribution of S-box {fig.target_sbox} input "
        f"(stuck-at-0 at bit {fig.target_bit}, last round, {fig.naive.n_runs} runs)",
        render_histogram(
            fig.naive.distribution,
            title=f"(a) naive duplication   SEI={fig.naive.sei:.4f}  {fig.naive.counts}",
        ),
        render_histogram(
            fig.ours.distribution,
            title=f"(b) our countermeasure  SEI={fig.ours.sei:.5f}  {fig.ours.counts}",
        ),
    ]
    emit(artifact_dir, "figure4.txt", "\n\n".join(parts))
    bench_report(
        artifact_dir,
        "fig4",
        config={"runs": bench_runs, "sbox": fig.target_sbox, "bit": fig.target_bit},
        metrics={
            "naive_sei": round(fig.naive.sei, 6),
            "ours_sei": round(fig.ours.sei, 7),
            "naive_support": int((fig.naive.distribution > 0).sum()),
            "ours_support": int((fig.ours.distribution > 0).sum()),
        },
    )
    benchmark.extra_info["naive_sei"] = round(fig.naive.sei, 5)
    benchmark.extra_info["ours_sei"] = round(fig.ours.sei, 6)


def test_figure4_key_recovery(benchmark, artifact_dir, bench_runs):
    """The exploitability companion: full SIFA key ranking (penultimate
    round fault, last-round nibble recovery) against both designs."""
    spec = PresentSpec()
    n_runs = min(bench_runs, 30_000)

    def run():
        out = {}
        for builder, label in (
            (build_naive_duplication, "naive"),
            (build_three_in_one, "ours"),
        ):
            design = builder(spec)
            net = sbox_input_net(design.cores[0], 7, 1)
            fault = FaultSpec.at(net, FaultType.STUCK_AT_0, spec.rounds - 2)
            knobs = campaign_knobs(f"fig4_recovery_{label}")
            campaign = run_campaign(
                design, [fault], n_runs=n_runs, key=BENCH_KEY, seed=21, **knobs
            )
            out[label] = sifa_attack(campaign, spec, 7, 1)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["naive"].success
    assert not results["ours"].success

    lines = [f"SIFA key recovery (stuck-at-0, S-box 7 bit 1, round 30, {n_runs} runs)"]
    for label, atk in results.items():
        lines.append(
            f"  {label}: samples={atk.n_samples} recovered_bits={atk.recovered_bits} "
            f"success={atk.success}"
        )
        for r in atk.attacked:
            lines.append(
                f"    last-round S-box {r.landing_sbox}: rank={r.rank} "
                f"best=0x{r.best_guess:x} true=0x{r.true_subkey:x}"
            )
    emit(artifact_dir, "figure4_key_recovery.txt", "\n".join(lines))
    bench_report(
        artifact_dir,
        "fig4_key_recovery",
        config={"runs": n_runs, "sbox": 7, "bit": 1},
        metrics={
            label: {
                "success": atk.success,
                "samples": atk.n_samples,
                "recovered_bits": atk.recovered_bits,
            }
            for label, atk in results.items()
        },
    )
