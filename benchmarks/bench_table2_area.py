"""Table II — area of PRESENT-80 encryption under both countermeasures.

Paper (45nm Nangate, commercial flow):
    naïve duplication   1289 + 1807 = 3096 GE (1.00×)
    our countermeasure  2290 + 1807 = 4097 GE (1.32×)

The benchmark times the full flow (S-box synthesis → datapath generation →
countermeasure wrapping → technology pricing) and asserts the two shapes
the paper argues from: identical non-combinational cost, and a total
overhead far below triplication's 1.5×-over-duplication.
"""

import pytest

from benchmarks.conftest import bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_triplication
from repro.evaluation import render_table, table2
from repro.tech import area_of


def test_table2(benchmark, artifact_dir):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)

    naive, ours = rows
    assert naive.non_combinational == pytest.approx(ours.non_combinational)
    assert 1.15 <= ours.ratio <= 1.60  # paper: 1.32×

    # positioning claim (§I): our overhead is close to duplication, while
    # every earlier SIFA countermeasure needs at least triplication
    trip = area_of(build_triplication(PresentSpec()).circuit)
    assert ours.total < trip.total

    text = render_table(
        ["design", "comb GE", "non-comb GE", "total GE", "ratio", "paper GE", "paper ratio"],
        [
            [
                r.design,
                r.combinational,
                r.non_combinational,
                r.total,
                f"{r.ratio:.2f}x",
                r.paper_total,
                f"{r.paper_ratio:.2f}x",
            ]
            for r in rows
        ]
        + [["triplication (context)", "-", "-", trip.total, f"{trip.total / naive.total:.2f}x", "-", "-"]],
        title="Table II: PRESENT-80 encryption area (paper: 3096 -> 4097 GE, 1.32x)",
    )
    emit(artifact_dir, "table2.txt", text)
    bench_report(
        artifact_dir,
        "table2",
        config={"cipher": "present80"},
        metrics={
            "naive_ge": naive.total,
            "ours_ge": ours.total,
            "ours_ratio": round(ours.ratio, 3),
            "triplication_ge": trip.total,
            "paper_ours_ge": ours.paper_total,
            "paper_ours_ratio": ours.paper_ratio,
        },
    )
    benchmark.extra_info["ours_ratio"] = round(ours.ratio, 3)
