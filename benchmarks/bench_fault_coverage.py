"""Exhaustive single-fault coverage of the three-in-one design.

The paper's security argument is per-location ("a single fault anywhere");
this bench walks *every S-box input line of both cores* (2 × 64 wires) ×
three fault polarities × two rounds and verifies that not one combination
releases a wrong ciphertext.  It also aggregates the ineffective rates,
whose tight concentration around ½ is the statistical signature of the λ
encoding doing its job on every wire.
"""

import numpy as np

from benchmarks.conftest import BENCH_KEY, bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.evaluation import render_table
from repro.faults import FaultSpec, FaultType, Outcome, run_campaign
from repro.faults.models import sbox_input_net

RUNS_PER_POINT = 256
FAULT_TYPES = (FaultType.STUCK_AT_0, FaultType.STUCK_AT_1, FaultType.BIT_FLIP)
ROUNDS = (16, 31)


def run_coverage():
    spec = PresentSpec()
    design = build_three_in_one(spec)
    bypasses = 0
    points = 0
    ineff_rates = []
    for core in design.cores:
        for sbox in range(16):
            for bit in range(4):
                net = sbox_input_net(core, sbox, bit)
                for fault_type in FAULT_TYPES:
                    for round_ in ROUNDS:
                        fault = FaultSpec.at(net, fault_type, round_ - 1)
                        res = run_campaign(
                            design, [fault], n_runs=RUNS_PER_POINT,
                            key=BENCH_KEY, seed=points,
                        )
                        points += 1
                        bypasses += res.count(Outcome.EFFECTIVE)
                        if fault_type is not FaultType.BIT_FLIP:
                            ineff_rates.append(res.rate(Outcome.INEFFECTIVE))
    return points, bypasses, np.array(ineff_rates)


def test_fault_coverage(benchmark, artifact_dir):
    points, bypasses, rates = benchmark.pedantic(run_coverage, rounds=1, iterations=1)

    assert bypasses == 0, f"{bypasses} wrong ciphertexts escaped"
    # stuck-at ineffectiveness concentrates at 1/2 on every wire
    assert 0.35 <= rates.min() and rates.max() <= 0.65
    assert abs(rates.mean() - 0.5) < 0.02

    text = render_table(
        ["metric", "value"],
        [
            ["fault points exercised", points],
            ["runs per point", RUNS_PER_POINT],
            ["total faulted encryptions", points * RUNS_PER_POINT],
            ["wrong ciphertexts released", bypasses],
            ["stuck-at ineffective rate (mean)", f"{rates.mean():.3f}"],
            ["stuck-at ineffective rate (min..max)", f"{rates.min():.3f}..{rates.max():.3f}"],
        ],
        title="Exhaustive S-box-wire fault coverage (three-in-one, PRESENT-80)",
    )
    emit(artifact_dir, "fault_coverage.txt", text)
    bench_report(
        artifact_dir,
        "fault_coverage",
        config={
            "runs_per_point": RUNS_PER_POINT,
            "fault_types": [ft.value for ft in FAULT_TYPES],
            "rounds": list(ROUNDS),
        },
        metrics={
            "points": points,
            "bypasses": bypasses,
            "ineffective_rate_mean": round(float(rates.mean()), 4),
            "ineffective_rate_min": round(float(rates.min()), 4),
            "ineffective_rate_max": round(float(rates.max()), 4),
        },
    )
