"""§IV-B.2 — side-channel assessment of the countermeasure.

The paper claims the scheme "does not inherently leak side-channel
information" and "does not open up any additional side channel
vulnerability".  This bench runs the TVLA-style λ-leakage assessment at
full trace count and prints the verdict table; the asserted findings:

- the encoding bit λ is invisible to a Hamming-distance (dynamic power)
  adversary — *exactly*, not just statistically;
- whole-chip Hamming weight is also blind, because the complementary cores
  balance each other (HW(x) + HW(x̄) = const) — a dual-rail-style bonus;
- a *localised* HW probe on one core does see λ, as does the cycle-0
  reset-load transition under HD — the residual vectors an implementer
  should know about (EXPERIMENTS.md discusses mitigations).
"""

import numpy as np

from benchmarks.conftest import bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.evaluation import render_table
from repro.netlist.gates import GateType
from repro.rng import make_rng, random_ints
from repro.sca import LeakageModel, max_abs_t, power_trace
from repro.sca.ttest import TVLA_THRESHOLD

KEY = 0x13579BDF02468ACE1122
# NOTE: the cycle-0 reset-load HD leak scales with |HW(round-1 state) − 32|,
# so the fixed plaintext is chosen to make that weight skewed (35 for this
# key); a balanced plaintext would null that single sample by luck.
FIXED_PT = 0x5AF019C3B2487D6E
N_TRACES = 500


def run_assessment():
    design = build_three_in_one(PresentSpec())
    fixed = [FIXED_PT] * N_TRACES
    rng = make_rng(2)
    core_a = [
        g.out
        for g in design.circuit.gates
        if g.gtype is GateType.DFF and g.tag.startswith("a/state")
    ]

    rows = []
    # sanity: the model sees data at all
    a = power_trace(design, fixed, KEY, rng=1)
    b = power_trace(design, random_ints(rng, N_TRACES, 64), KEY, rng=2)
    rows.append(["fixed-vs-random PT", "whole chip", "HD", max_abs_t(a, b)])

    def lam_groups(model, nets):
        l0 = power_trace(design, fixed, KEY, model=model, lambdas=[0] * N_TRACES,
                         rng=3, nets=nets)
        l1 = power_trace(design, fixed, KEY, model=model, lambdas=[1] * N_TRACES,
                         rng=4, nets=nets)
        return l0, l1

    l0, l1 = lam_groups(LeakageModel.HAMMING_DISTANCE, None)
    rows.append(["λ=0 vs λ=1", "whole chip", "HD", max_abs_t(l0, l1)])
    l0, l1 = lam_groups(LeakageModel.HAMMING_WEIGHT, None)
    rows.append(["λ=0 vs λ=1", "whole chip", "HW", max_abs_t(l0, l1)])
    l0, l1 = lam_groups(LeakageModel.HAMMING_DISTANCE, core_a)
    rows.append(["λ=0 vs λ=1", "core-a probe", "HD cycles>=1", max_abs_t(l0[:, 1:], l1[:, 1:])])
    rows.append(["λ=0 vs λ=1", "core-a probe", "HD cycle 0", max_abs_t(l0[:, :1], l1[:, :1])])
    l0, l1 = lam_groups(LeakageModel.HAMMING_WEIGHT, core_a)
    rows.append(["λ=0 vs λ=1", "core-a probe", "HW", max_abs_t(l0, l1)])
    return rows


def test_sca_lambda_leakage(benchmark, artifact_dir):
    rows = benchmark.pedantic(run_assessment, rounds=1, iterations=1)
    by_key = {(r[0], r[1], r[2]): r[3] for r in rows}

    assert by_key[("fixed-vs-random PT", "whole chip", "HD")] > TVLA_THRESHOLD
    assert by_key[("λ=0 vs λ=1", "whole chip", "HD")] < 1e-9
    assert by_key[("λ=0 vs λ=1", "whole chip", "HW")] < 1e-9
    assert by_key[("λ=0 vs λ=1", "core-a probe", "HD cycles>=1")] < 1e-9
    assert by_key[("λ=0 vs λ=1", "core-a probe", "HD cycle 0")] > TVLA_THRESHOLD
    assert by_key[("λ=0 vs λ=1", "core-a probe", "HW")] > TVLA_THRESHOLD

    text = render_table(
        ["experiment", "probe", "model", "max |t|"],
        [[r[0], r[1], r[2], ("inf" if np.isinf(r[3]) else f"{r[3]:.1f}")] for r in rows],
        title=(
            f"TVLA λ-leakage assessment, {N_TRACES} traces/group "
            f"(threshold {TVLA_THRESHOLD})"
        ),
    )
    emit(artifact_dir, "sca_leakage.txt", text)
    bench_report(
        artifact_dir,
        "sca_leakage",
        config={"traces": N_TRACES, "threshold": TVLA_THRESHOLD},
        metrics={
            f"{exp} | {probe} | {model}": (
                "inf" if np.isinf(t) else round(float(t), 3)
            )
            for exp, probe, model, t in rows
        },
    )
