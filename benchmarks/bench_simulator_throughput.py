"""Substrate performance — what makes the 80k-run campaigns feasible.

Not a paper artefact, but the reproduction's enabling number: encryptions
per second of the bit-parallel simulator on the protected PRESENT-80
design, and the cost model behind it.  Two kernels share the semantics
(see the simulation-backends section in DESIGN.md): the per-gate
*reference* interpreter (one numpy op dispatch per gate per cycle) and
the *levelized* opcode-batched kernel (one gather/op/scatter per
(level, opcode) group).  ``test_backend_batch_sweep`` measures both
across batch sizes, records gate-lanes/s in
``benchmarks/out/BENCH_simulator.json``, and enforces the kernel's
raison d'être: ≥5× over the reference on protected PRESENT-80 at
batch 4096.
"""

import time

from benchmarks.conftest import BENCH_KEY, bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.rng import make_rng, random_ints


def test_protected_encrypt_throughput(benchmark, artifact_dir):
    design = build_three_in_one(PresentSpec())
    batch = 8192
    rng = make_rng(1)
    pts = random_ints(rng, batch, 64)
    sim = design.simulator(batch)

    def encrypt_batch():
        design.run(sim, pts, BENCH_KEY, rng=rng)

    benchmark.pedantic(encrypt_batch, rounds=3, iterations=1, warmup_rounds=1)
    per_second = batch / benchmark.stats["mean"]
    gates = len(design.circuit.gates)
    emit(
        artifact_dir,
        "throughput.txt",
        (
            f"bit-parallel simulator: {per_second:,.0f} protected PRESENT-80 "
            f"encryptions/s (batch {batch}, {gates} gates, 31 cycles)"
        ),
    )
    benchmark.extra_info["encryptions_per_second"] = int(per_second)
    bench_report(
        artifact_dir,
        "throughput",
        config={"batch": batch, "gates": gates, "cycles": 31},
        metrics={"encryptions_per_second": int(per_second)},
    )
    assert per_second > 1000  # sanity floor: campaigns stay in seconds


BATCH_SWEEP = [256, 1024, 4096, 8192]
SPEEDUP_BATCH = 4096  # the acceptance point for the levelized kernel
SPEEDUP_FLOOR = 5.0


def _time_sim(design, backend: str, batch: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time of one full encryption's clocking.

    Pure simulation (``Simulator.run`` over ``design.cycles`` steps) — the
    code the kernels replace — excluding input packing and readout, which
    are identical across backends.
    """
    rng = make_rng(2)
    sim = design.simulator(batch, backend=backend)
    sim.set_input_ints("plaintext", random_ints(rng, batch, design.spec.block_bits))
    sim.run(design.cycles)  # warm-up: page in buffers, compile schedule
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        sim.run(design.cycles)
        best = min(best, time.perf_counter() - t0)
    return best


def test_backend_batch_sweep(artifact_dir):
    """Backend × batch-size sweep on protected PRESENT-80.

    The figure of merit is *gate-lanes per second*: gate evaluations ×
    parallel runs per wall-second (``gates × batch × cycles / time``) —
    the rate at which simulated silicon does work, comparable across
    batch sizes.
    """
    design = build_three_in_one(PresentSpec())
    gates = sum(1 for g in design.circuit.gates if g.gtype.is_combinational)
    cycles = design.cycles
    rows = []
    for batch in BATCH_SWEEP:
        for backend in ("reference", "levelized"):
            seconds = _time_sim(design, backend, batch)
            rows.append(
                {
                    "backend": backend,
                    "batch": batch,
                    "seconds": round(seconds, 6),
                    "gate_lanes_per_second": int(gates * batch * cycles / seconds),
                }
            )
    by_key = {(r["backend"], r["batch"]): r for r in rows}
    speedup = (
        by_key[("reference", SPEEDUP_BATCH)]["seconds"]
        / by_key[("levelized", SPEEDUP_BATCH)]["seconds"]
    )
    bench_report(
        artifact_dir,
        "simulator",
        config={
            "design": "three-in-one protected PRESENT-80",
            "comb_gates": gates,
            "cycles": cycles,
            "batch_sweep": BATCH_SWEEP,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        metrics={
            "sweep": rows,
            "speedup_at_4096": round(speedup, 2),
        },
    )
    lines = [
        f"  {r['backend']:>9}  batch={r['batch']:>5}  "
        f"{r['seconds'] * 1e3:8.2f} ms  "
        f"{r['gate_lanes_per_second'] / 1e9:6.2f} G gate-lanes/s"
        for r in rows
    ]
    emit(
        artifact_dir,
        "backend_sweep.txt",
        "simulator backend sweep (protected PRESENT-80):\n"
        + "\n".join(lines)
        + f"\nlevelized speedup at batch {SPEEDUP_BATCH}: {speedup:.2f}x",
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"levelized kernel only {speedup:.2f}x faster than reference at "
        f"batch {SPEEDUP_BATCH} (floor {SPEEDUP_FLOOR}x)"
    )
