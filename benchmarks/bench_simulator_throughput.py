"""Substrate performance — what makes the 80k-run campaigns feasible.

Not a paper artefact, but the reproduction's enabling number: encryptions
per second of the bit-parallel simulator on the protected PRESENT-80
design, and the single-instruction cost model behind it (one numpy op per
gate per cycle, amortised over 64 runs per machine word).
"""

from benchmarks.conftest import BENCH_KEY, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.rng import make_rng, random_ints


def test_protected_encrypt_throughput(benchmark, artifact_dir):
    design = build_three_in_one(PresentSpec())
    batch = 8192
    rng = make_rng(1)
    pts = random_ints(rng, batch, 64)
    sim = design.simulator(batch)

    def encrypt_batch():
        design.run(sim, pts, BENCH_KEY, rng=rng)

    benchmark.pedantic(encrypt_batch, rounds=3, iterations=1, warmup_rounds=1)
    per_second = batch / benchmark.stats["mean"]
    gates = len(design.circuit.gates)
    emit(
        artifact_dir,
        "throughput.txt",
        (
            f"bit-parallel simulator: {per_second:,.0f} protected PRESENT-80 "
            f"encryptions/s (batch {batch}, {gates} gates, 31 cycles)"
        ),
    )
    benchmark.extra_info["encryptions_per_second"] = int(per_second)
    assert per_second > 1000  # sanity floor: campaigns stay in seconds
