"""Substrate performance — what makes the 80k-run campaigns feasible.

Not a paper artefact, but the reproduction's enabling number: encryptions
per second of the bit-parallel simulator on the protected PRESENT-80
design, and the cost model behind it.  Three kernels share the semantics
(see the simulation-backends section in DESIGN.md): the per-gate
*reference* interpreter (one numpy op dispatch per gate per cycle), the
*levelized* opcode-batched kernel (one gather/op/scatter per
(level, opcode) group), and the *compiled* kernel (AOT-generated
straight-line code over a preallocated, scatter-free buffer plan).
``test_backend_batch_sweep`` measures all three across batch sizes,
records gate-lanes/s in ``benchmarks/out/BENCH_simulator.json``, and
enforces each fast kernel's raison d'être: levelized ≥5× over the
reference and compiled ≥2× over levelized on protected PRESENT-80 at
batch 4096.
"""

import time

from benchmarks.conftest import BENCH_KEY, bench_report, emit
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_three_in_one
from repro.rng import make_rng, random_ints


def test_protected_encrypt_throughput(benchmark, artifact_dir):
    design = build_three_in_one(PresentSpec())
    batch = 8192
    rng = make_rng(1)
    pts = random_ints(rng, batch, 64)
    sim = design.simulator(batch)

    def encrypt_batch():
        design.run(sim, pts, BENCH_KEY, rng=rng)

    benchmark.pedantic(encrypt_batch, rounds=3, iterations=1, warmup_rounds=1)
    per_second = batch / benchmark.stats["mean"]
    gates = len(design.circuit.gates)
    emit(
        artifact_dir,
        "throughput.txt",
        (
            f"bit-parallel simulator: {per_second:,.0f} protected PRESENT-80 "
            f"encryptions/s (batch {batch}, {gates} gates, 31 cycles)"
        ),
    )
    benchmark.extra_info["encryptions_per_second"] = int(per_second)
    bench_report(
        artifact_dir,
        "throughput",
        config={"batch": batch, "gates": gates, "cycles": 31},
        metrics={"encryptions_per_second": int(per_second)},
    )
    assert per_second > 1000  # sanity floor: campaigns stay in seconds


BATCH_SWEEP = [256, 1024, 4096, 8192]
SWEEP_BACKENDS = ("reference", "levelized", "compiled")
SPEEDUP_BATCH = 4096  # the acceptance point for the fast kernels
SPEEDUP_FLOOR = 5.0  # levelized over reference
COMPILED_FLOOR = 2.0  # compiled over levelized


def _time_backends(design, backends, batch: int, repeats: int = 5) -> dict:
    """Best-of-``repeats`` wall time per backend, measured interleaved.

    Pure simulation (``Simulator.run`` over ``design.cycles`` steps) — the
    code the kernels replace — excluding input packing and readout, which
    are identical across backends.  The repeats round-robin over the
    backends so a transient load spike on a shared runner degrades every
    backend alike instead of silently skewing the speedup ratios.
    """
    rng = make_rng(2)
    pts = random_ints(rng, batch, design.spec.block_bits)
    sims = {}
    for backend in backends:
        sim = design.simulator(batch, backend=backend)
        sim.set_input_ints("plaintext", pts)
        sim.run(design.cycles)  # warm-up: page in buffers, compile schedule
        sims[backend] = sim
    best = {backend: float("inf") for backend in backends}
    for _ in range(repeats):
        for backend, sim in sims.items():
            t0 = time.perf_counter()
            sim.run(design.cycles)
            best[backend] = min(best[backend], time.perf_counter() - t0)
    return best


def test_backend_batch_sweep(artifact_dir):
    """Backend × batch-size sweep on protected PRESENT-80.

    The figure of merit is *gate-lanes per second*: gate evaluations ×
    parallel runs per wall-second (``gates × batch × cycles / time``) —
    the rate at which simulated silicon does work, comparable across
    batch sizes.
    """
    design = build_three_in_one(PresentSpec())
    gates = sum(1 for g in design.circuit.gates if g.gtype.is_combinational)
    cycles = design.cycles
    rows = []
    for batch in BATCH_SWEEP:
        timed = _time_backends(design, SWEEP_BACKENDS, batch)
        for backend in SWEEP_BACKENDS:
            seconds = timed[backend]
            rows.append(
                {
                    "backend": backend,
                    "batch": batch,
                    "seconds": round(seconds, 6),
                    "gate_lanes_per_second": int(gates * batch * cycles / seconds),
                }
            )
    by_key = {(r["backend"], r["batch"]): r["seconds"] for r in rows}
    speedups = {
        "levelized_over_reference": round(
            by_key[("reference", SPEEDUP_BATCH)]
            / by_key[("levelized", SPEEDUP_BATCH)],
            2,
        ),
        "compiled_over_levelized": round(
            by_key[("levelized", SPEEDUP_BATCH)]
            / by_key[("compiled", SPEEDUP_BATCH)],
            2,
        ),
        "compiled_over_reference": round(
            by_key[("reference", SPEEDUP_BATCH)]
            / by_key[("compiled", SPEEDUP_BATCH)],
            2,
        ),
    }
    bench_report(
        artifact_dir,
        "simulator",
        config={
            "design": "three-in-one protected PRESENT-80",
            "comb_gates": gates,
            "cycles": cycles,
            "batch_sweep": BATCH_SWEEP,
            "backends": list(SWEEP_BACKENDS),
            "speedup_floors": {
                "levelized_over_reference": SPEEDUP_FLOOR,
                "compiled_over_levelized": COMPILED_FLOOR,
            },
        },
        metrics={
            "sweep": rows,
            "speedups_at_4096": speedups,
        },
    )
    lines = [
        f"  {r['backend']:>9}  batch={r['batch']:>5}  "
        f"{r['seconds'] * 1e3:8.2f} ms  "
        f"{r['gate_lanes_per_second'] / 1e9:6.2f} G gate-lanes/s"
        for r in rows
    ]
    emit(
        artifact_dir,
        "backend_sweep.txt",
        "simulator backend sweep (protected PRESENT-80):\n"
        + "\n".join(lines)
        + f"\nspeedups at batch {SPEEDUP_BATCH}: "
        + ", ".join(f"{k.replace('_', ' ')} {v:.2f}x" for k, v in speedups.items()),
    )
    assert speedups["levelized_over_reference"] >= SPEEDUP_FLOOR, (
        f"levelized kernel only {speedups['levelized_over_reference']:.2f}x "
        f"faster than reference at batch {SPEEDUP_BATCH} "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    assert speedups["compiled_over_levelized"] >= COMPILED_FLOOR, (
        f"compiled kernel only {speedups['compiled_over_levelized']:.2f}x "
        f"faster than levelized at batch {SPEEDUP_BATCH} "
        f"(floor {COMPILED_FLOOR}x)"
    )
