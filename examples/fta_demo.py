"""Fault Template Attack (Eurocrypt'20) — the attack nobody had a
countermeasure for before this paper.

The adversary fixes the plaintext, flips one wire inside an S-box instance
in round 1, and only watches whether the device's output changes.  Each
wire is an oracle on the S-box's internal values; intersecting candidate
sets over a few chosen plaintexts yields the round-1 key nibble — *without
ever seeing a faulty ciphertext*, which is why duplication alone is
helpless.  Randomised encoding breaks the templates.

Run:  python examples/fta_demo.py
"""

from repro.attacks.fta import fta_attack, fta_key_recovery, fta_targets
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one

KEY = 0xFEDCBA9876543210ABCD
SBOX = 3
PLAINTEXTS = [
    0x5AF019C3B2487D6E,
    0xC3A1905E7F2B6D84,
    0x0F1E2D3C4B5A6978,
    0x9182736455463728,
]


def main() -> None:
    spec = PresentSpec()
    for builder, label in (
        (build_naive_duplication, "naive duplication"),
        (build_three_in_one, "three-in-one countermeasure"),
    ):
        design = builder(spec)
        n_wires = len(fta_targets(design.sbox_circuit))
        print(f"=== {label} ({n_wires} target wires per S-box) ===")

        # one template pass on the first plaintext, to show the raw signal
        first = fta_attack(
            design, sbox=SBOX, round_=1, plaintext=PLAINTEXTS[0],
            key=KEY, n_rep=32, seed=7,
        )
        obs = ", ".join(f"{o:.2f}" for o in first.observations[:8])
        print(f"per-wire effectiveness fractions (first 8): [{obs}, ...]")
        print(f"S-box input candidates from one plaintext: {first.candidates} "
              f"(true: {first.true_x})")

        # full key-nibble recovery across chosen plaintexts
        recovery = fta_key_recovery(
            design, sbox=SBOX, plaintexts=PLAINTEXTS, key=KEY,
            n_rep=32, seed=7,
        )
        print(
            f"intersected key-nibble candidates: {sorted(recovery.candidates)} "
            f"(true: 0x{recovery.true_key_nibble:x}) -> "
            f"attack {'SUCCEEDED' if recovery.success else 'FAILED'}\n"
        )


if __name__ == "__main__":
    main()
