"""SIFA end-to-end: break naïve duplication, starve against three-in-one.

Walks through the CHES'18 attack exactly as the paper's Fig. 4 frames it:
a biased (stuck-at-0) fault, a campaign of randomised encryptions, the
ineffective-set filter, and the SEI key ranking — first against the
classic duplicate-and-compare design (key nibbles fall out), then against
the paper's countermeasure (the distribution flattens, ranking fails).

Run:  python examples/sifa_attack_demo.py  [n_runs]
"""

import sys

from repro.attacks import sifa_attack
from repro.attacks.sifa import ineffective_distribution
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.evaluation import render_histogram
from repro.faults import FaultSpec, FaultType, run_campaign
from repro.faults.models import sbox_input_net

KEY = 0x5E6F708192A3B4C5D6E7
FAULTED_SBOX, FAULTED_BIT = 7, 1


def attack(design, label: str, spec, n_runs: int) -> None:
    print(f"=== {label} ===")
    # stuck-at-0 one round before the last (see repro.attacks.sifa for why
    # the penultimate round is the right target for key *ranking*)
    net = sbox_input_net(design.cores[0], FAULTED_SBOX, FAULTED_BIT)
    fault = FaultSpec.at(net, FaultType.STUCK_AT_0, spec.rounds - 2)
    campaign = run_campaign(design, [fault], n_runs=n_runs, key=KEY, seed=21)
    print(f"campaign outcomes: {campaign.counts()}")

    dist = ineffective_distribution(campaign, spec, FAULTED_SBOX)
    print(render_histogram(dist, title=(
        f"last-round input of S-box {FAULTED_SBOX} over the ineffective set "
        "(true key)"), width=40))

    result = sifa_attack(campaign, spec, FAULTED_SBOX, FAULTED_BIT)
    for rec in result.attacked:
        print(
            f"  landing S-box {rec.landing_sbox}: best guess 0x{rec.best_guess:x} "
            f"(true 0x{rec.true_subkey:x}) rank {rec.rank}"
        )
    print(f"recovered last-round key bits: {result.recovered_bits}  "
          f"attack {'SUCCEEDED' if result.success else 'FAILED'}\n")


def main() -> None:
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 24_000
    spec = PresentSpec()
    attack(build_naive_duplication(spec), "naive duplication", spec, n_runs)
    attack(build_three_in_one(spec), "three-in-one countermeasure", spec, n_runs)


if __name__ == "__main__":
    main()
