"""The countermeasure on full AES-128 — beyond the paper's evaluation.

The paper prices AES's S-box layer (Table III) but evaluates the complete
scheme only on PRESENT-80.  This example protects the *whole* AES-128
datapath, which works because every AES linear operation tolerates the
inverted encoding:

- AddRoundKey:  ``x̄ ⊕ k = (x ⊕ k)‾``
- ShiftRows:    byte permutations move complements unchanged
- MixColumns:   its matrix rows sum to ``2 ⊕ 3 ⊕ 1 ⊕ 1 = 1`` in GF(2⁸),
                so ``M(1…1) = 1…1`` and ``M(x̄) = M(x)‾``

Run:  python examples/aes_protected.py
"""

from repro.ciphers.netlist_aes import AesReference, AesSpec, block_to_int
from repro.countermeasures import build_naive_duplication, build_three_in_one
from repro.faults import FaultSpec, FaultType, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.tech import area_of

KEY_BYTES = bytes(range(16))
KEY = block_to_int(KEY_BYTES)
PT = block_to_int(bytes.fromhex("00112233445566778899aabbccddeeff"))


def main() -> None:
    spec = AesSpec()
    ref = AesReference(KEY)

    naive = build_naive_duplication(spec)
    ours = build_three_in_one(spec)
    a_naive, a_ours = area_of(naive.circuit), area_of(ours.circuit)
    print(f"AES-128 naive duplication: {a_naive.total:8.0f} GE")
    print(f"AES-128 three-in-one:      {a_ours.total:8.0f} GE "
          f"({a_ours.total / a_naive.total:.2f}x)")

    # fault-free check against FIPS-197
    sim = ours.simulator(4)
    res = ours.run(sim, [PT] * 4, KEY, rng=9)
    cts = {
        sum(int(b) << i for i, b in enumerate(row)) for row in res["ciphertext"]
    }
    expected = ref.encrypt(PT)
    assert cts == {expected} and not res["fault"].any()
    print(f"\nFIPS-197 vector through the protected netlist: "
          f"{expected:032x}  (4 λ-randomised runs agree)")

    # identical fault in both computations, last round
    for design, label in ((naive, "naive duplication"), (ours, "three-in-one")):
        specs = [
            FaultSpec.at(
                sbox_input_net(core, 5, 1), FaultType.STUCK_AT_0, last_round(core)
            )
            for core in design.cores
        ]
        campaign = run_campaign(design, specs, n_runs=3000, key=KEY, seed=2)
        print(f"identical-fault campaign vs {label}: {campaign.counts()}")


if __name__ == "__main__":
    main()
