"""The Selmke–Heyszl–Sigl identical-fault DFA (FDTC'16) — paper Fig. 5.

Injects the *same* stuck-at fault into the corresponding wire of both
computations (their double-laser setup), which defeats plain duplication:
both cores derail identically, the comparator agrees, and faulty
ciphertexts stream out.  The classic DFA solver then recovers the subkey
from a handful of them.  Against the three-in-one scheme the two cores run
in complementary encodings, so the identical physical fault produces
*different logical errors* — every effective fault is detected.

Run:  python examples/identical_fault_dfa.py  [n_runs]
"""

import sys

from repro.attacks import selmke_attack
from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import (
    build_acisp20,
    build_naive_duplication,
    build_three_in_one,
)

KEY = 0x99AABBCCDDEEFF001122
TARGET_SBOX, TARGET_BIT = 5, 1


def main() -> None:
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 12_000
    spec = PresentSpec()
    for builder, label in (
        (build_naive_duplication, "naive duplication"),
        (build_acisp20, "ACISP'20 (independent λ per core)"),
        (build_three_in_one, "three-in-one (λ / λ̄)"),
    ):
        design = builder(spec)
        result = selmke_attack(
            design,
            target_sbox=TARGET_SBOX,
            faulted_bit=TARGET_BIT,
            key=KEY,
            n_runs=n_runs,
            seed=4,
        )
        print(f"=== {label} ===")
        print(f"campaign outcomes: {result.campaign.counts()}")
        if result.dfa is None:
            print("no faulty ciphertext ever released -> DFA starved\n")
        else:
            dfa = result.dfa
            print(
                f"faulty ciphertexts released: {result.n_faulty_released}; "
                f"DFA on {dfa.n_pairs} pairs -> survivors "
                f"{[hex(s) for s in dfa.survivors]} (true 0x{dfa.true_subkey:x})"
            )
            print(f"attack {'SUCCEEDED' if result.success else 'FAILED'}\n")


if __name__ == "__main__":
    main()
