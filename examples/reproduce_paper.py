"""One-command reproduction of the paper's entire evaluation section.

Regenerates Table II, Table III, Fig. 4 and Fig. 5 (plus the end-to-end
attack matrix that makes the security claims executable) and prints each
artefact next to the paper's numbers.  Equivalent to running the full
benchmark suite, minus the timing harness.

Run:  python examples/reproduce_paper.py [--runs N]   (default 80,000)
"""

import argparse
import time

from repro.evaluation import (
    figure4,
    figure5,
    render_histogram,
    render_table,
    table2,
    table3,
)
from repro.evaluation.matrix import run_attack_matrix


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--runs", type=int, default=80_000,
                        help="campaign size (paper: 80000)")
    args = parser.parse_args()
    started = time.time()

    print("=" * 72)
    print("Table II — PRESENT-80 encryption area")
    print("=" * 72)
    print(render_table(
        ["design", "comb GE", "non-comb GE", "total GE", "ratio", "paper GE", "paper ratio"],
        [[r.design, r.combinational, r.non_combinational, r.total,
          f"{r.ratio:.2f}x", r.paper_total, f"{r.paper_ratio:.2f}x"]
         for r in table2()],
    ))

    print()
    print("=" * 72)
    print("Table III — one duplicated S-box layer")
    print("=" * 72)
    print(render_table(
        ["countermeasure", "cipher", "total GE", "ratio", "paper GE", "paper ratio"],
        [[r.countermeasure, r.cipher, r.total, f"{r.ratio:.2f}x",
          r.paper_total, f"{r.paper_ratio:.2f}x"] for r in table3()],
    ))

    print()
    print("=" * 72)
    print(f"Fig. 4 — SIFA bias, stuck-at-0 at S-box 13 bit 2 ({args.runs} runs)")
    print("=" * 72)
    fig4 = figure4(n_runs=args.runs)
    print(render_histogram(
        fig4.naive.distribution,
        title=f"(a) naive duplication   SEI={fig4.naive.sei:.4f}"))
    print(render_histogram(
        fig4.ours.distribution,
        title=f"(b) our countermeasure  SEI={fig4.ours.sei:.5f}"))

    print()
    print("=" * 72)
    print(f"Fig. 5 — identical faults in both computations ({args.runs} runs)")
    print("=" * 72)
    fig5 = figure5(n_runs=args.runs)
    for series, label in ((fig5.naive, "(a) naive duplication"),
                          (fig5.ours, "(b) our countermeasure")):
        print(f"{label}: faulty released = {series.faulty_released}, "
              f"outcomes = {series.counts}")

    print()
    print("=" * 72)
    print("Attack x scheme key-recovery matrix")
    print("=" * 72)
    matrix = run_attack_matrix(min(args.runs, 16_000))
    print(render_table(
        ["scheme", "identical-fault DFA", "SIFA", "FTA"],
        [[label,
          "BROKEN" if cells["dfa_identical"].success else "protected",
          "BROKEN" if cells["sifa"].success else "protected",
          "BROKEN" if cells["fta"].success else "protected"]
         for label, cells in matrix.items()],
    ))

    print(f"\nreproduced the full evaluation in {time.time() - started:.0f}s")


if __name__ == "__main__":
    main()
