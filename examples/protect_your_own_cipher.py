"""Genericity demo: protect a cipher this library has never seen.

The paper claims the countermeasure "is easily adaptable for any symmetric
key primitive".  Here we define TOY16 — a 16-bit, 8-round SPN invented for
this example — as an :class:`SpnSpec`, and the entire countermeasure stack
(merged S-boxes, complementary-λ cores, comparator, fault campaign)
applies unmodified.  GIFT-64 ships in the library as the serious version
of this demo (`repro.ciphers.netlist_gift`).

Run:  python examples/protect_your_own_cipher.py
"""

from repro.ciphers.sbox import SBox
from repro.ciphers.spn import SpnSpec
from repro.countermeasures import LambdaVariant, build_three_in_one
from repro.faults import FaultSpec, FaultType, run_campaign
from repro.faults.models import last_round, sbox_input_net
from repro.rng import make_rng, random_ints

# -- the cipher ------------------------------------------------------------

TOY_SBOX = SBox([0x6, 0x5, 0xC, 0xA, 0x1, 0xE, 0x7, 0x9,
                 0xB, 0x0, 0x3, 0xD, 0x8, 0xF, 0x4, 0x2], name="toy")
#: bit i of the state moves to 4*(i % 4) + i // 4 (a 4x4 transpose)
TOY_PERM = [4 * (i % 4) + i // 4 for i in range(16)]


class Toy16(SpnSpec):
    """16-bit SPN: addkey -> S-box layer -> transpose, 8 rounds + whitening.

    The 32-bit key supplies alternating halves as round keys (a deliberately
    simple schedule — the point is the wrapper, not the cipher).
    """

    name = "toy16"
    block_bits = 16
    key_bits = 32
    rounds = 8
    sbox = TOY_SBOX
    perm = list(TOY_PERM)
    add_key_first = True
    final_whitening = True

    def build_scheduler(self, builder, key_in, first, tag):
        # round key alternates between the low and high key halves; a 1-bit
        # phase register selects which one this cycle.
        phase, connect = builder.register(1, tag=f"{tag}/phase")
        connect([builder.not_(phase[0], tag=f"{tag}/phase")])
        lo, hi = key_in[:16], key_in[16:]
        return builder.mux_word(phase[0], lo, hi, tag=f"{tag}/rk")

    def reference(self, key: int) -> "Toy16Reference":
        return Toy16Reference(key)


class Toy16Reference:
    """Spec-level oracle with the interface the attack helpers expect."""

    def __init__(self, key: int) -> None:
        self.round_keys = [
            (key >> 16) & 0xFFFF if r % 2 else key & 0xFFFF for r in range(9)
        ]

    def encrypt(self, pt: int) -> int:
        state = pt
        for rk in self.round_keys[:8]:
            state ^= rk
            state = sum(TOY_SBOX((state >> (4 * i)) & 0xF) << (4 * i) for i in range(4))
            state = sum(((state >> i) & 1) << TOY_PERM[i] for i in range(16))
        return state ^ self.round_keys[8]


# -- protect it ------------------------------------------------------------


def main() -> None:
    spec = Toy16()
    design = build_three_in_one(spec, variant=LambdaVariant.PER_ROUND)
    print(f"protected TOY16: {design.circuit} (variant={design.variant})")

    # fault-free equivalence against the reference
    rng = make_rng(3)
    key = 0xDEADBEEF
    pts = random_ints(rng, 64, 16)
    sim = design.simulator(64)
    out = design.run(sim, pts, key, rng=rng)
    ref = Toy16Reference(key)
    cts = [sum(int(b) << i for i, b in enumerate(row)) for row in out["ciphertext"]]
    assert cts == [ref.encrypt(p) for p in pts]
    assert not out["fault"].any()
    print("fault-free: 64/64 batched runs match the reference, flag low")

    # and the countermeasure does its job on the new cipher, unchanged
    core = design.cores[0]
    fault = FaultSpec.at(
        sbox_input_net(core, 2, 1), FaultType.STUCK_AT_0, last_round(core)
    )
    res = run_campaign(design, [fault], n_runs=4000, key=key, seed=5)
    print(f"stuck-at-0 campaign on TOY16: {res.counts()}")
    assert res.counts()["effective"] == 0
    print("no faulty ciphertext ever released — countermeasure carried over.")


if __name__ == "__main__":
    main()
