"""Regenerate the paper's area tables (Table II and Table III) and show
the per-scheme cost landscape, including the baselines the paper positions
itself against.

Run:  python examples/area_report.py
"""

from repro.ciphers.netlist_present import PresentSpec
from repro.countermeasures import (
    LambdaVariant,
    build_acisp20,
    build_naive_duplication,
    build_three_in_one,
    build_triplication,
)
from repro.evaluation import render_table, table2, table3
from repro.tech import area_of


def main() -> None:
    print(render_table(
        ["design", "comb GE", "non-comb GE", "total GE", "ratio", "paper GE"],
        [
            [r.design, r.combinational, r.non_combinational, r.total,
             f"{r.ratio:.2f}x", r.paper_total]
            for r in table2()
        ],
        title="Table II: PRESENT-80 encryption (paper: 3096 -> 4097 GE, 1.32x)",
    ))
    print()
    print(render_table(
        ["countermeasure", "cipher", "total GE", "ratio", "paper GE"],
        [
            [r.countermeasure, r.cipher, r.total, f"{r.ratio:.2f}x", r.paper_total]
            for r in table3()
        ],
        title="Table III: one duplicated S-box layer (paper: 2.3x / 1.8x)",
    ))

    # the wider landscape: every scheme in the library on PRESENT-80
    spec = PresentSpec()
    designs = [
        ("naive duplication", build_naive_duplication(spec)),
        ("triplication (SIFA baseline)", build_triplication(spec)),
        ("ACISP'20", build_acisp20(spec)),
        ("three-in-one prime", build_three_in_one(spec)),
        ("three-in-one per-round", build_three_in_one(spec, variant=LambdaVariant.PER_ROUND)),
        ("three-in-one per-sbox", build_three_in_one(spec, variant=LambdaVariant.PER_SBOX)),
    ]
    base = area_of(designs[0][1].circuit)
    rows = []
    for label, design in designs:
        report = area_of(design.circuit)
        rows.append([label, report.combinational, report.non_combinational,
                     report.total, f"{report.total / base.total:.2f}x"])
    print()
    print(render_table(
        ["scheme", "comb GE", "non-comb GE", "total GE", "vs naive dup"],
        rows,
        title="Scheme landscape (PRESENT-80, paper-calibrated Nangate 45nm GE)",
    ))


if __name__ == "__main__":
    main()
