"""Quickstart: protect PRESENT-80 with the three-in-one countermeasure,
encrypt a block, then fire a laser (well, a simulated stuck-at fault) at it.

Run:  python examples/quickstart.py
"""

from repro.ciphers.netlist_present import PresentSpec
from repro.ciphers.present import Present80
from repro.countermeasures import build_three_in_one
from repro.faults import FaultInjector, FaultSpec, FaultType
from repro.faults.models import last_round, sbox_input_net
from repro.rng import make_rng

KEY = 0x0123456789ABCDEF0123
PLAINTEXT = 0xCAFEBABE_DEADBEEF


def main() -> None:
    # 1. Build the protected design: two PRESENT-80 cores in complementary
    #    random encodings (λ and λ̄), merged S-boxes, compare-and-suppress.
    spec = PresentSpec()
    design = build_three_in_one(spec)
    print(f"protected design: {design.circuit}")
    print(f"scheme={design.scheme} variant={design.variant} "
          f"λ-width={design.lambda_width}\n")

    # 2. Fault-free encryption: batch of 4 runs; λ is drawn fresh per run,
    #    yet every run must produce the spec-level ciphertext.
    sim = design.simulator(batch=4)
    result = design.run(sim, [PLAINTEXT] * 4, KEY, rng=make_rng(7))
    cts = [
        sum(int(b) << i for i, b in enumerate(row))
        for row in result["ciphertext"]
    ]
    expected = Present80(KEY).encrypt(PLAINTEXT)
    print(f"spec-level   ciphertext: {expected:016x}")
    for run, ct in enumerate(cts):
        flag = int(result["fault"][run])
        print(f"run {run}: released {ct:016x}  fault_flag={flag}")
        assert ct == expected and flag == 0

    # 3. Now inject a stuck-at-0 on the 2nd MSB input line of S-box 13 in
    #    the last round of the *actual* core — the paper's Fig. 4 fault.
    core = design.cores[0]
    fault = FaultSpec.at(
        sbox_input_net(core, 13, 2), FaultType.STUCK_AT_0, last_round(core)
    )
    injector = FaultInjector([fault], batch=8)
    sim = design.simulator(batch=8, faults=injector)
    result = design.run(sim, [PLAINTEXT] * 8, KEY, rng=make_rng(11))

    print("\nwith the fault injected (same plaintext, fresh λ each run):")
    for run in range(8):
        ct = sum(int(b) << i for i, b in enumerate(result["ciphertext"][run]))
        flag = int(result["fault"][run])
        status = (
            "ineffective -> correct output released" if ct == expected
            else "DETECTED -> output suppressed" if flag
            else "BYPASS (should never happen)"
        )
        print(f"run {run}: fault_flag={flag}  {status}")
        assert flag or ct == expected

    print(
        "\nWhether the fault is ineffective no longer depends on the secret "
        "data\n(the wire's physical value is λ-randomised) — that is the "
        "whole countermeasure."
    )


if __name__ == "__main__":
    main()
