"""Setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build an editable
wheel.  This shim lets ``python setup.py develop`` / legacy pip editable
installs work; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
